#include "verify/verify.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "ir/memdep.h"  // kMemDepMaxDistance only; the derivation is redone here
#include "machine/fu.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

std::string_view verify_rule_name(VerifyRule rule) {
  switch (rule) {
    case VerifyRule::kArtifactShape:
      return "artifact-shape";
    case VerifyRule::kLoopStructure:
      return "loop-structure";
    case VerifyRule::kDdgFlow:
      return "ddg-flow";
    case VerifyRule::kDdgMem:
      return "ddg-mem";
    case VerifyRule::kSchedIncomplete:
      return "sched-incomplete";
    case VerifyRule::kSchedDependence:
      return "sched-dependence";
    case VerifyRule::kSchedPlacement:
      return "sched-placement";
    case VerifyRule::kSchedResource:
      return "sched-resource";
    case VerifyRule::kRouteAdjacency:
      return "route-adjacency";
    case VerifyRule::kRouteFanout:
      return "route-fanout";
    case VerifyRule::kQueueIi:
      return "queue-ii";
    case VerifyRule::kQueueLifetime:
      return "queue-lifetime";
    case VerifyRule::kQueueDomain:
      return "queue-domain";
    case VerifyRule::kQueueAssignment:
      return "queue-assignment";
    case VerifyRule::kQueueReadBeforeWrite:
      return "queue-read-before-write";
    case VerifyRule::kQueueFifo:
      return "queue-fifo";
    case VerifyRule::kQueuePort:
      return "queue-port";
    case VerifyRule::kQueueCapacity:
      return "queue-capacity";
  }
  return "unknown-rule";
}

bool VerifyReport::has_rule(VerifyRule rule) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [rule](const VerifyDiagnostic& d) { return d.rule == rule; });
}

std::string VerifyReport::summary(int limit) const {
  std::string out;
  const int shown = limit > 0 ? std::min<int>(limit, violations()) : violations();
  for (int i = 0; i < shown; ++i) {
    if (i > 0) out += "; ";
    out += diagnostics[static_cast<std::size_t>(i)].message;
  }
  if (shown < violations()) out += cat(" (+", violations() - shown, " more)");
  return out;
}

void VerifyReport::add(VerifyRule rule, std::string message) {
  diagnostics.push_back({rule, cat(verify_rule_name(rule), ": ", message)});
}

void VerifyReport::merge(VerifyReport other) {
  for (auto& d : other.diagnostics) diagnostics.push_back(std::move(d));
}

namespace {

std::string op_label(const Loop& loop, int op) {
  const Op& o = loop.ops[static_cast<std::size_t>(op)];
  std::string label = cat("op ", op, " (", opcode_name(o.opcode));
  if (!o.name.empty()) label += cat(" ", o.name);
  return label + ")";
}

/// Shared shape guard: the three artifact passes all require the loop, the
/// graph and the schedule to agree on the op count before any per-op
/// reasoning makes sense.
bool shapes_agree(const Loop& loop, const Ddg& graph, const Schedule& schedule,
                  VerifyReport& report) {
  if (graph.node_count() != loop.op_count()) {
    report.add(VerifyRule::kArtifactShape, cat("DDG has ", graph.node_count(), " nodes for a ",
                                               loop.op_count(), "-op loop"));
    return false;
  }
  if (schedule.op_count() != loop.op_count()) {
    report.add(VerifyRule::kArtifactShape, cat("schedule covers ", schedule.op_count(),
                                               " ops but the loop has ", loop.op_count()));
    return false;
  }
  return true;
}

/// Re-derives the memory order edges a correct DDG must contain, from the
/// affine reference model alone: A[stride*i + off_a] and
/// A[stride*i + off_b] touch the same element exactly when the offsets
/// differ by a whole number of strides, and that number is the distance.
/// Returned sorted by (src, dst, distance) — lookups binary-search the flat
/// array, and the "missing edge" sweep reports in the same order the old
/// std::map-based implementation iterated.
struct ExpectedMemDep {
  int src = -1;
  int dst = -1;
  int distance = 0;
  DepKind kind = DepKind::kMemFlow;
  bool seen = false;
};
std::vector<ExpectedMemDep> expected_memory_edges(const Loop& loop) {
  std::vector<ExpectedMemDep> expected;
  std::vector<int> mem_ops;
  for (int i = 0; i < loop.op_count(); ++i) {
    if (is_memory(loop.ops[static_cast<std::size_t>(i)].opcode)) mem_ops.push_back(i);
  }
  for (std::size_t x = 0; x < mem_ops.size(); ++x) {
    for (std::size_t y = x + 1; y < mem_ops.size(); ++y) {
      const int a = mem_ops[x];
      const int b = mem_ops[y];
      const Op& op_a = loop.ops[static_cast<std::size_t>(a)];
      const Op& op_b = loop.ops[static_cast<std::size_t>(b)];
      if (op_a.array != op_b.array) continue;
      const bool a_store = op_a.opcode == Opcode::kStore;
      const bool b_store = op_b.opcode == Opcode::kStore;
      if (!a_store && !b_store) continue;
      const int delta = op_a.mem_offset - op_b.mem_offset;
      if (delta % loop.stride != 0) continue;
      // b's aliasing iteration lags a's by `iters`; the dependence runs
      // from the earlier-touching op (ties break to program order).
      const int iters = delta / loop.stride;
      const int src = iters >= 0 ? a : b;
      const int dst = iters >= 0 ? b : a;
      const int distance = iters >= 0 ? iters : -iters;
      if (distance > kMemDepMaxDistance) continue;
      const bool src_store = loop.ops[static_cast<std::size_t>(src)].opcode == Opcode::kStore;
      const bool dst_store = loop.ops[static_cast<std::size_t>(dst)].opcode == Opcode::kStore;
      DepKind kind = DepKind::kMemAnti;
      if (src_store) kind = dst_store ? DepKind::kMemOutput : DepKind::kMemFlow;
      // Each (src, dst, distance) key arises from exactly one (a, b) pair
      // — (src, dst) determines the pair — so append-then-sort never
      // produces duplicates.
      expected.push_back({src, dst, distance, kind, false});
    }
  }
  std::sort(expected.begin(), expected.end(), [](const ExpectedMemDep& p, const ExpectedMemDep& q) {
    return std::tie(p.src, p.dst, p.distance) < std::tie(q.src, q.dst, q.distance);
  });
  return expected;
}

ExpectedMemDep* find_expected_mem(std::vector<ExpectedMemDep>& expected, int src, int dst,
                                  int distance) {
  const auto it = std::lower_bound(
      expected.begin(), expected.end(), std::make_tuple(src, dst, distance),
      [](const ExpectedMemDep& e, const std::tuple<int, int, int>& key) {
        return std::tie(e.src, e.dst, e.distance) < key;
      });
  if (it == expected.end() || it->src != src || it->dst != dst || it->distance != distance) {
    return nullptr;
  }
  return &*it;
}

/// Queue domain a flow between two placed clusters must live in,
/// re-derived here from the topology parameters alone — deliberately not
/// by calling Topology::segment_between, so the verifier's notion of the
/// canonical segment numbering is independent of the producer's.
/// Ring: clockwise segments c -> c+1 get ids 0..k-1, counter-clockwise
/// segments c+1 -> c get ids k..2k-1; clockwise wins the k == 2 tie.
/// Mesh: one segment per directed grid-neighbour edge, enumerated
/// source-major with destinations ascending.  Crossbar: one segment per
/// ordered pair, enumerated the same way.
std::optional<QueueDomain> expected_domain(const MachineConfig& machine, int producer_cluster,
                                           int consumer_cluster) {
  if (producer_cluster == consumer_cluster) {
    return QueueDomain{QueueDomain::Kind::kPrivate, producer_cluster};
  }
  const int k = machine.cluster_count();
  switch (machine.topology_kind) {
    case TopologyKind::kRing:
      if ((producer_cluster + 1) % k == consumer_cluster) {
        return QueueDomain{QueueDomain::Kind::kSegment, producer_cluster};
      }
      if (k > 2 && (consumer_cluster + 1) % k == producer_cluster) {
        return QueueDomain{QueueDomain::Kind::kSegment, k + consumer_cluster};
      }
      return std::nullopt;
    case TopologyKind::kMesh: {
      const int rows = machine.mesh_rows;
      const int cols = machine.mesh_cols;
      const int pr = producer_cluster / cols;
      const int pc = producer_cluster % cols;
      const int cr = consumer_cluster / cols;
      const int cc = consumer_cluster % cols;
      if (std::abs(pr - cr) + std::abs(pc - cc) != 1) return std::nullopt;
      int id = 0;
      for (int n = 0; n < producer_cluster; ++n) {
        const int r = n / cols;
        const int c = n % cols;
        id += (r > 0 ? 1 : 0) + (r + 1 < rows ? 1 : 0) + (c > 0 ? 1 : 0) + (c + 1 < cols ? 1 : 0);
      }
      if (consumer_cluster == producer_cluster - cols) {
        return QueueDomain{QueueDomain::Kind::kSegment, id};
      }
      id += pr > 0 ? 1 : 0;
      if (consumer_cluster == producer_cluster - 1) {
        return QueueDomain{QueueDomain::Kind::kSegment, id};
      }
      id += pc > 0 ? 1 : 0;
      if (consumer_cluster == producer_cluster + 1) {
        return QueueDomain{QueueDomain::Kind::kSegment, id};
      }
      id += pc + 1 < cols ? 1 : 0;
      return QueueDomain{QueueDomain::Kind::kSegment, id};  // one row down
    }
    case TopologyKind::kCrossbar:
      return QueueDomain{
          QueueDomain::Kind::kSegment,
          producer_cluster * (k - 1) +
              (consumer_cluster < producer_cluster ? consumer_cluster : consumer_cluster - 1)};
  }
  return std::nullopt;
}

/// Queue count / depth limits of one domain on a concrete machine.
void domain_limits(const MachineConfig& machine, const QueueDomain& domain, int& queue_limit,
                   int& depth_limit) {
  if (domain.kind == QueueDomain::Kind::kPrivate) {
    queue_limit = machine.cluster(domain.index).private_queues;
    depth_limit = machine.cluster(domain.index).queue_depth;
  } else {
    queue_limit = machine.segment.queues_per_segment;
    depth_limit = machine.segment.queue_depth;
  }
}

/// True when the domain's index is inside the machine's cluster/segment
/// ranges (an untrusted bundle can claim anything).
bool domain_in_range(const Topology& topology, const QueueDomain& domain) {
  const int limit = domain.kind == QueueDomain::Kind::kPrivate ? topology.cluster_count()
                                                               : topology.segment_count();
  return domain.index >= 0 && domain.index < limit;
}

/// domain_name that tolerates out-of-range indices instead of throwing.
std::string safe_domain_name(const Topology& topology, const QueueDomain& domain) {
  if (!domain_in_range(topology, domain)) {
    const std::string_view what =
        domain.kind == QueueDomain::Kind::kPrivate ? "private[" : "segment[";
    return cat(what, domain.index, "]");
  }
  return domain_name(topology, domain);
}

}  // namespace

VerifyReport verify_ddg(const Loop& loop, const Ddg& graph, const LatencyModel& latency) {
  VerifyReport report;
  try {
    loop.validate();
  } catch (const Error& error) {
    report.add(VerifyRule::kLoopStructure, error.what());
    return report;
  }
  if (graph.node_count() != loop.op_count()) {
    report.add(VerifyRule::kArtifactShape, cat("DDG has ", graph.node_count(), " nodes for a ",
                                               loop.op_count(), "-op loop"));
    return report;
  }

  // Expected register flow: one edge per value operand, carrying the
  // producing opcode's latency and the operand's distance.
  struct ExpectedFlow {
    int src = -1;
    int latency = 0;
    int distance = 0;
    bool seen = false;
  };
  std::vector<std::vector<std::optional<ExpectedFlow>>> expected_flow(
      static_cast<std::size_t>(loop.op_count()));
  for (int d = 0; d < loop.op_count(); ++d) {
    const Op& op = loop.ops[static_cast<std::size_t>(d)];
    auto& slots = expected_flow[static_cast<std::size_t>(d)];
    slots.resize(op.args.size());
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      const Operand& arg = op.args[a];
      if (!arg.is_value()) continue;
      const Opcode producer = loop.ops[static_cast<std::size_t>(arg.value_op)].opcode;
      slots[a] = ExpectedFlow{arg.value_op, latency.of(producer), arg.distance, false};
    }
  }

  auto expected_mem = expected_memory_edges(loop);

  for (int e = 0; e < graph.edge_count(); ++e) {
    const DepEdge& edge = graph.edge(e);
    if (edge.kind == DepKind::kFlow) {
      auto& slots = expected_flow[static_cast<std::size_t>(edge.dst)];
      if (edge.dst_arg < 0 || edge.dst_arg >= static_cast<int>(slots.size()) ||
          !slots[static_cast<std::size_t>(edge.dst_arg)].has_value()) {
        report.add(VerifyRule::kDdgFlow, cat("flow edge ", edge.src, "->", edge.dst,
                                             " targets non-value operand slot ", edge.dst_arg,
                                             " of ", op_label(loop, edge.dst)));
        continue;
      }
      ExpectedFlow& want = *slots[static_cast<std::size_t>(edge.dst_arg)];
      if (want.seen) {
        report.add(VerifyRule::kDdgFlow, cat("duplicate flow edge into operand ", edge.dst_arg,
                                             " of ", op_label(loop, edge.dst)));
        continue;
      }
      want.seen = true;
      if (edge.src != want.src) {
        report.add(VerifyRule::kDdgFlow,
                   cat("flow edge into operand ", edge.dst_arg, " of ", op_label(loop, edge.dst),
                       " names producer ", edge.src, ", operand names ", want.src));
      }
      if (edge.latency != want.latency) {
        report.add(VerifyRule::kDdgFlow,
                   cat("flow edge ", edge.src, "->", edge.dst, " carries latency ", edge.latency,
                       ", producer opcode implies ", want.latency));
      }
      if (edge.distance != want.distance) {
        report.add(VerifyRule::kDdgFlow,
                   cat("flow edge ", edge.src, "->", edge.dst, " carries distance ",
                       edge.distance, ", operand reads @", want.distance));
      }
    } else {
      if (edge.latency != 1) {
        report.add(VerifyRule::kDdgMem, cat("memory edge ", edge.src, "->", edge.dst,
                                            " carries latency ", edge.latency, ", must be 1"));
      }
      if (edge.distance < 0 || edge.distance > kMemDepMaxDistance) {
        report.add(VerifyRule::kDdgMem,
                   cat("memory edge ", edge.src, "->", edge.dst, " distance ", edge.distance,
                       " outside [0, ", kMemDepMaxDistance, "]"));
        continue;
      }
      ExpectedMemDep* want = find_expected_mem(expected_mem, edge.src, edge.dst, edge.distance);
      if (want == nullptr) {
        report.add(VerifyRule::kDdgMem,
                   cat("memory ", dep_kind_name(edge.kind), " edge ", edge.src, "->", edge.dst,
                       " @", edge.distance, " has no aliasing justification"));
        continue;
      }
      if (want->seen) {
        report.add(VerifyRule::kDdgMem, cat("duplicate memory edge ", edge.src, "->", edge.dst,
                                            " @", edge.distance));
        continue;
      }
      want->seen = true;
      if (want->kind != edge.kind) {
        report.add(VerifyRule::kDdgMem,
                   cat("memory edge ", edge.src, "->", edge.dst, " @", edge.distance,
                       " labelled ", dep_kind_name(edge.kind), ", opcodes imply ",
                       dep_kind_name(want->kind)));
      }
    }
  }

  for (int d = 0; d < loop.op_count(); ++d) {
    const auto& slots = expected_flow[static_cast<std::size_t>(d)];
    for (std::size_t a = 0; a < slots.size(); ++a) {
      if (slots[a].has_value() && !slots[a]->seen) {
        report.add(VerifyRule::kDdgFlow, cat("value operand ", a, " of ", op_label(loop, d),
                                             " has no flow edge"));
      }
    }
  }
  for (const ExpectedMemDep& dep : expected_mem) {
    if (!dep.seen) {
      report.add(VerifyRule::kDdgMem, cat("missing memory ", dep_kind_name(dep.kind), " edge ",
                                          dep.src, "->", dep.dst, " @", dep.distance));
    }
  }
  return report;
}

VerifyReport verify_modulo_schedule(const Loop& loop, const Ddg& graph,
                                    const MachineConfig& machine, const Schedule& schedule) {
  VerifyReport report;
  if (!shapes_agree(loop, graph, schedule, report)) return report;
  const int ii = schedule.ii();

  // Completeness + placement ranges, then conflict freedom on a freshly
  // built modulo occupancy map (one owner per (cluster, class, instance,
  // cycle mod II) slot) — a dense array over the machine's slot space,
  // indexed only after the placement checks passed.
  int max_fu = 1;
  for (int c = 0; c < machine.cluster_count(); ++c) {
    for (int k = 0; k < kNumFuKinds; ++k) {
      max_fu = std::max(max_fu, machine.fu_count(c, static_cast<FuKind>(k)));
    }
  }
  std::vector<int> slot_owner(static_cast<std::size_t>(machine.cluster_count()) * kNumFuKinds *
                                  static_cast<std::size_t>(max_fu) * static_cast<std::size_t>(ii),
                              -1);
  for (int i = 0; i < loop.op_count(); ++i) {
    if (!schedule.scheduled(i)) {
      report.add(VerifyRule::kSchedIncomplete, cat(op_label(loop, i), " has no placement"));
      continue;
    }
    const Placement& at = schedule.place(i);
    const FuKind kind = fu_for(loop.ops[static_cast<std::size_t>(i)].opcode);
    bool placed_ok = true;
    if (at.cycle < 0) {
      report.add(VerifyRule::kSchedPlacement, cat(op_label(loop, i), " at negative cycle ",
                                                  at.cycle));
      placed_ok = false;
    }
    if (at.cluster < 0 || at.cluster >= machine.cluster_count()) {
      report.add(VerifyRule::kSchedPlacement,
                 cat(op_label(loop, i), " on cluster ", at.cluster, ", machine has ",
                     machine.cluster_count()));
      placed_ok = false;
    }
    if (placed_ok && (at.fu < 0 || at.fu >= machine.fu_count(at.cluster, kind))) {
      report.add(VerifyRule::kSchedPlacement,
                 cat(op_label(loop, i), " on ", fu_kind_name(kind), " instance ", at.fu,
                     ", cluster ", at.cluster, " has ", machine.fu_count(at.cluster, kind)));
      placed_ok = false;
    }
    if (!placed_ok) continue;
    const int slot = at.cycle % ii;
    const std::size_t index =
        ((static_cast<std::size_t>(at.cluster) * kNumFuKinds + static_cast<std::size_t>(kind)) *
             static_cast<std::size_t>(max_fu) +
         static_cast<std::size_t>(at.fu)) *
            static_cast<std::size_t>(ii) +
        static_cast<std::size_t>(slot);
    if (slot_owner[index] >= 0) {
      report.add(VerifyRule::kSchedResource,
                 cat(op_label(loop, i), " and ", op_label(loop, slot_owner[index]),
                     " double-book ", fu_kind_name(kind), " instance ", at.fu, " of cluster ",
                     at.cluster, " at modulo slot ", slot));
    } else {
      slot_owner[index] = i;
    }
  }

  for (int e = 0; e < graph.edge_count(); ++e) {
    const DepEdge& edge = graph.edge(e);
    if (!schedule.scheduled(edge.src) || !schedule.scheduled(edge.dst)) continue;
    const int earliest = schedule.cycle(edge.src) + edge.latency - ii * edge.distance;
    if (schedule.cycle(edge.dst) < earliest) {
      report.add(VerifyRule::kSchedDependence,
                 cat(dep_kind_name(edge.kind), " edge ", edge.src, "->", edge.dst,
                     " violated: sigma(dst)=", schedule.cycle(edge.dst), " < sigma(src)+lat-II*dist=",
                     earliest));
    }
  }
  return report;
}

VerifyReport verify_routing(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                            const Schedule& schedule, bool check_fanout) {
  VerifyReport report;
  if (!shapes_agree(loop, graph, schedule, report)) return report;

  const std::string_view kind = topology_kind_name(machine.topology_kind);
  for (int e = 0; e < graph.edge_count(); ++e) {
    const DepEdge& edge = graph.edge(e);
    if (!edge.is_value_flow()) continue;
    if (!schedule.scheduled(edge.src) || !schedule.scheduled(edge.dst)) continue;
    const int from = schedule.cluster(edge.src);
    const int to = schedule.cluster(edge.dst);
    if (from < 0 || from >= machine.cluster_count() || to < 0 || to >= machine.cluster_count()) {
      continue;  // reported as sched-placement by the schedule pass
    }
    const int hops = machine.distance(from, to);
    if (hops > 1) {
      report.add(VerifyRule::kRouteAdjacency,
                 cat("value of ", op_label(loop, edge.src), " on cluster ", from,
                     " consumed by ", op_label(loop, edge.dst), " on cluster ", to, " (", hops,
                     " ", kind, " hops; only adjacent clusters share a segment)"));
    }
  }

  if (check_fanout) {
    // Queue fan-out discipline (Section 2): a popped instance is gone, so
    // a value supports one consumer — two when produced by `copy`, whose
    // unit has two write ports.  Copy insertion exists to restore exactly
    // this; consumer counts come straight from the operands.
    std::vector<int> consumers(static_cast<std::size_t>(loop.op_count()), 0);
    for (const Op& op : loop.ops) {
      for (const Operand& arg : op.args) {
        if (arg.is_value()) ++consumers[static_cast<std::size_t>(arg.value_op)];
      }
    }
    for (int d = 0; d < loop.op_count(); ++d) {
      const Op& op = loop.ops[static_cast<std::size_t>(d)];
      if (!op.defines_value()) continue;
      const int limit = op.opcode == Opcode::kCopy ? 2 : 1;
      if (consumers[static_cast<std::size_t>(d)] > limit) {
        report.add(VerifyRule::kRouteFanout,
                   cat("value of ", op_label(loop, d), " has ",
                       consumers[static_cast<std::size_t>(d)], " consumers; ",
                       opcode_name(op.opcode), " results support ", limit));
      }
    }
  }
  return report;
}

VerifyReport verify_queue_allocation(const Loop& loop, const Ddg& graph,
                                     const MachineConfig& machine, const Schedule& schedule,
                                     const QueueAllocation& allocation, bool must_fit) {
  VerifyReport report;
  if (!shapes_agree(loop, graph, schedule, report)) return report;
  if (!schedule.complete()) {
    report.add(VerifyRule::kArtifactShape,
               "queue allocation checked against an incomplete schedule");
    return report;
  }
  const int ii = schedule.ii();
  const Topology topology = machine.topology();
  if (allocation.ii != ii) {
    report.add(VerifyRule::kQueueIi,
               cat("allocation built for II=", allocation.ii, ", schedule has II=", ii));
  }

  // One lifetime per flow edge, with push/pop/endpoints/domain re-derived
  // from the schedule.
  std::vector<int> lifetime_of_edge(static_cast<std::size_t>(graph.edge_count()), -1);
  std::vector<bool> lifetime_usable(allocation.lifetimes.size(), false);
  for (std::size_t l = 0; l < allocation.lifetimes.size(); ++l) {
    const Lifetime& lt = allocation.lifetimes[l];
    if (lt.edge < 0 || lt.edge >= graph.edge_count() ||
        !graph.edge(lt.edge).is_value_flow()) {
      report.add(VerifyRule::kQueueLifetime,
                 cat("lifetime ", l, " names edge ", lt.edge, ", not a flow edge"));
      continue;
    }
    if (lifetime_of_edge[static_cast<std::size_t>(lt.edge)] >= 0) {
      report.add(VerifyRule::kQueueLifetime, cat("flow edge ", lt.edge,
                                                 " covered by two lifetimes"));
      continue;
    }
    lifetime_of_edge[static_cast<std::size_t>(lt.edge)] = static_cast<int>(l);
    const DepEdge& edge = graph.edge(lt.edge);
    bool usable = true;
    if (lt.producer != edge.src || lt.consumer != edge.dst) {
      report.add(VerifyRule::kQueueLifetime,
                 cat("lifetime of edge ", lt.edge, " records endpoints ", lt.producer, "->",
                     lt.consumer, ", edge has ", edge.src, "->", edge.dst));
      usable = false;
    }
    const int want_push =
        schedule.cycle(edge.src) +
        machine.latency.of(loop.ops[static_cast<std::size_t>(edge.src)].opcode);
    const int want_pop = schedule.cycle(edge.dst) + ii * edge.distance;
    if (lt.push != want_push || lt.pop != want_pop) {
      report.add(VerifyRule::kQueueLifetime,
                 cat("lifetime of edge ", lt.edge, " records [", lt.push, ", ", lt.pop,
                     "], schedule implies [", want_push, ", ", want_pop, "]"));
      usable = false;
    }
    if (want_pop < want_push) {
      report.add(VerifyRule::kQueueReadBeforeWrite,
                 cat("edge ", lt.edge, ": ", op_label(loop, edge.dst), " pops at cycle ",
                     want_pop, " before ", op_label(loop, edge.src), " pushes at ", want_push));
      usable = false;
    }
    const auto want_domain =
        expected_domain(machine, schedule.cluster(edge.src), schedule.cluster(edge.dst));
    if (!want_domain.has_value()) {
      report.add(VerifyRule::kQueueDomain,
                 cat("edge ", lt.edge, " flows between non-adjacent clusters ",
                     schedule.cluster(edge.src), " and ", schedule.cluster(edge.dst),
                     "; no queue domain spans them"));
      usable = false;
    } else if (lt.domain != *want_domain) {
      report.add(VerifyRule::kQueueDomain,
                 cat("lifetime of edge ", lt.edge, " filed under ",
                     safe_domain_name(topology, lt.domain), ", placement implies ",
                     safe_domain_name(topology, *want_domain)));
      usable = false;
    }
    lifetime_usable[l] = usable;
  }
  for (int e = 0; e < graph.edge_count(); ++e) {
    if (graph.edge(e).is_value_flow() && lifetime_of_edge[static_cast<std::size_t>(e)] < 0) {
      report.add(VerifyRule::kQueueLifetime, cat("flow edge ", e, " (", graph.edge(e).src, "->",
                                                 graph.edge(e).dst, ") has no lifetime"));
    }
  }

  // queue_of / queues bookkeeping must be two views of one assignment.
  const int queue_count = static_cast<int>(allocation.queues.size());
  if (allocation.queue_of.size() != allocation.lifetimes.size()) {
    report.add(VerifyRule::kQueueAssignment,
               cat("queue_of covers ", allocation.queue_of.size(), " lifetimes of ",
                   allocation.lifetimes.size()));
    return report;
  }
  std::vector<std::vector<int>> members_of(static_cast<std::size_t>(queue_count));
  bool assignment_ok = true;
  for (std::size_t l = 0; l < allocation.queue_of.size(); ++l) {
    const int q = allocation.queue_of[l];
    if (q < 0 || q >= queue_count) {
      report.add(VerifyRule::kQueueAssignment,
                 cat("lifetime ", l, " assigned to queue ", q, " of ", queue_count));
      assignment_ok = false;
      continue;
    }
    members_of[static_cast<std::size_t>(q)].push_back(static_cast<int>(l));
  }
  for (int q = 0; q < queue_count; ++q) {
    const AllocatedQueue& queue = allocation.queues[static_cast<std::size_t>(q)];
    std::vector<int> recorded = queue.members;
    std::vector<int> derived = members_of[static_cast<std::size_t>(q)];
    std::sort(recorded.begin(), recorded.end());
    std::sort(derived.begin(), derived.end());
    if (recorded != derived) {
      report.add(VerifyRule::kQueueAssignment,
                 cat("queue ", q, " member list disagrees with queue_of (", recorded.size(),
                     " recorded, ", derived.size(), " derived)"));
      assignment_ok = false;
      continue;
    }
    for (int l : derived) {
      if (lifetime_usable[static_cast<std::size_t>(l)] &&
          allocation.lifetimes[static_cast<std::size_t>(l)].domain != queue.domain) {
        report.add(VerifyRule::kQueueAssignment,
                   cat("lifetime ", l, " lives in ",
                       safe_domain_name(topology,
                                        allocation.lifetimes[static_cast<std::size_t>(l)].domain),
                       " but its queue ", q, " belongs to ",
                       safe_domain_name(topology, queue.domain)));
        assignment_ok = false;
      }
    }
  }

  // Joint FIFO simulation per queue: replay every member instance's push
  // and pop over a horizon long enough to reach steady state, enforcing
  // the hardware's rules directly — pushes land at cycle start, pops
  // retire at cycle end, one push and one pop per queue per cycle, and a
  // pop must take the value at the front.  This deliberately does not use
  // qrf/qcompat.h's closed-form test.
  std::vector<int> sim_occupancy(static_cast<std::size_t>(queue_count), 0);
  if (assignment_ok) {
    for (int q = 0; q < queue_count; ++q) {
      const std::vector<int>& members = members_of[static_cast<std::size_t>(q)];
      if (members.empty()) continue;
      const bool all_usable =
          std::all_of(members.begin(), members.end(),
                      [&](int l) { return lifetime_usable[static_cast<std::size_t>(l)]; });
      if (!all_usable) continue;  // endpoint diagnostics already filed
      long long horizon = 0;
      for (int l : members) {
        horizon = std::max<long long>(horizon,
                                      allocation.lifetimes[static_cast<std::size_t>(l)].pop);
      }
      horizon += 2LL * ii;

      struct Event {
        long long time = 0;
        bool is_pop = false;  // pushes sort before pops within a cycle
        int lifetime = -1;
        long long instance = 0;
      };
      std::vector<Event> events;
      for (int l : members) {
        const Lifetime& lt = allocation.lifetimes[static_cast<std::size_t>(l)];
        for (long long k = 0; lt.push + k * ii <= horizon; ++k) {
          events.push_back({lt.push + k * ii, false, l, k});
          if (lt.pop + k * ii <= horizon) events.push_back({lt.pop + k * ii, true, l, k});
        }
      }
      std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
        return std::tie(a.time, a.is_pop, a.lifetime, a.instance) <
               std::tie(b.time, b.is_pop, b.lifetime, b.instance);
      });

      // The FIFO is an append-only buffer with a head cursor (values are
      // never shifted; a pop just advances the head), so the whole replay
      // is linear in the event count.
      std::vector<std::pair<int, long long>> fifo;  // (lifetime, instance)
      fifo.reserve(events.size() / 2 + 1);
      std::size_t head = 0;
      long long last_push_cycle = -1;
      long long last_pop_cycle = -1;
      bool queue_ok = true;
      for (const Event& event : events) {
        if (!queue_ok) break;
        if (!event.is_pop) {
          if (event.time == last_push_cycle) {
            report.add(VerifyRule::kQueuePort,
                       cat("queue ", q, " (",
                           safe_domain_name(
                               topology, allocation.queues[static_cast<std::size_t>(q)].domain),
                           ") receives two pushes in cycle ", event.time));
            queue_ok = false;
            break;
          }
          last_push_cycle = event.time;
          fifo.emplace_back(event.lifetime, event.instance);
          sim_occupancy[static_cast<std::size_t>(q)] =
              std::max(sim_occupancy[static_cast<std::size_t>(q)],
                       static_cast<int>(fifo.size() - head));
        } else {
          if (event.time == last_pop_cycle) {
            report.add(VerifyRule::kQueuePort,
                       cat("queue ", q, " services two pops in cycle ", event.time));
            queue_ok = false;
            break;
          }
          last_pop_cycle = event.time;
          if (head == fifo.size()) {
            report.add(VerifyRule::kQueueFifo,
                       cat("queue ", q, ": pop of lifetime ", event.lifetime, " instance ",
                           event.instance, " at cycle ", event.time, " finds the queue empty"));
            queue_ok = false;
            break;
          }
          if (fifo[head] != std::make_pair(event.lifetime, event.instance)) {
            report.add(
                VerifyRule::kQueueFifo,
                cat("queue ", q, ": pop at cycle ", event.time, " expects lifetime ",
                    event.lifetime, " instance ", event.instance, " but lifetime ",
                    fifo[head].first, " instance ", fifo[head].second, " is at the front"));
            queue_ok = false;
            break;
          }
          ++head;
        }
      }
    }
  }

  // Capacity against the machine, checked only when the producer claims
  // the allocation fits: per-domain queue counts and simulated occupancy
  // against configured depths.
  if (must_fit && assignment_ok) {
    std::map<QueueDomain, int> queues_per_domain;
    for (const AllocatedQueue& queue : allocation.queues) {
      ++queues_per_domain[queue.domain];
    }
    for (const auto& [domain, used] : queues_per_domain) {
      if (!domain_in_range(topology, domain)) {
        report.add(VerifyRule::kQueueDomain, cat("domain ", safe_domain_name(topology, domain),
                                                 " names a cluster/segment out of range"));
        continue;
      }
      int queue_limit = 0;
      int depth_limit = 0;
      domain_limits(machine, domain, queue_limit, depth_limit);
      if (used > queue_limit) {
        report.add(VerifyRule::kQueueCapacity, cat(domain_name(topology, domain), " needs ", used,
                                                   " queues, machine has ", queue_limit));
      }
    }
    for (int q = 0; q < queue_count; ++q) {
      const AllocatedQueue& queue = allocation.queues[static_cast<std::size_t>(q)];
      if (!domain_in_range(topology, queue.domain)) continue;
      int queue_limit = 0;
      int depth_limit = 0;
      domain_limits(machine, queue.domain, queue_limit, depth_limit);
      if (sim_occupancy[static_cast<std::size_t>(q)] > depth_limit) {
        report.add(VerifyRule::kQueueCapacity,
                   cat("queue ", q, " (", domain_name(topology, queue.domain), ") needs depth ",
                       sim_occupancy[static_cast<std::size_t>(q)], ", machine allows ",
                       depth_limit));
      }
    }
  }
  return report;
}

VerifyReport verify_artifacts(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                              const Schedule& schedule, const QueueAllocation* allocation,
                              bool check_fanout, bool must_fit) {
  VerifyReport report = verify_ddg(loop, graph, machine.latency);
  report.merge(verify_modulo_schedule(loop, graph, machine, schedule));
  report.merge(verify_routing(loop, graph, machine, schedule, check_fanout));
  if (allocation != nullptr) {
    report.merge(verify_queue_allocation(loop, graph, machine, schedule, *allocation, must_fit));
  }
  return report;
}

// --- bundle codec ----------------------------------------------------------

namespace {

// "QVBNDL" + format version.  Bump on any layout change below.  Version
// 0002 added the machine's topology fields and collapsed the queue-domain
// kinds to {private, segment}; version-0001 bundles are still decoded
// (machines default to ring, cw/ccw domain kinds translate to canonical
// segment ids).
constexpr std::uint64_t kVerifyBundleMagic = 0x5156424e444c0002ULL;
constexpr std::uint64_t kVerifyBundleMagicV1 = 0x5156424e444c0001ULL;
constexpr int kMaxBundleItems = 1 << 24;

void put_domain(BlobWriter& out, const QueueDomain& domain) {
  out.put_i32(static_cast<std::int32_t>(domain.kind));
  out.put_i32(domain.index);
}

QueueDomain get_domain(BlobReader& in, int version, int cluster_count) {
  const std::int32_t kind = in.get_i32();
  QueueDomain domain;
  if (version == 1) {
    // v1 kinds: 0 private, 1 ring-cw (segment i: i -> i+1), 2 ring-ccw
    // (segment i: i+1 -> i, canonical id k+i).
    if (kind < 0 || kind > 2) fail(cat("verify bundle: bad queue-domain kind ", kind));
    domain.kind = kind == 0 ? QueueDomain::Kind::kPrivate : QueueDomain::Kind::kSegment;
    domain.index = in.get_i32();
    if (kind == 2) domain.index += cluster_count;
    return domain;
  }
  if (kind < 0 || kind > 1) fail(cat("verify bundle: bad queue-domain kind ", kind));
  domain.kind = static_cast<QueueDomain::Kind>(kind);
  domain.index = in.get_i32();
  return domain;
}

int get_count(BlobReader& in, std::string_view what) {
  const std::int32_t n = in.get_i32();
  if (n < 0 || n > kMaxBundleItems) fail(cat("verify bundle: implausible ", what, " count ", n));
  return n;
}

void put_allocation(BlobWriter& out, const QueueAllocation& allocation) {
  out.put_i32(allocation.ii);
  out.put_i32(static_cast<std::int32_t>(allocation.lifetimes.size()));
  for (const Lifetime& lt : allocation.lifetimes) {
    out.put_i32(lt.edge);
    out.put_i32(lt.producer);
    out.put_i32(lt.consumer);
    out.put_i32(lt.push);
    out.put_i32(lt.pop);
    put_domain(out, lt.domain);
  }
  out.put_i32(static_cast<std::int32_t>(allocation.queue_of.size()));
  for (int q : allocation.queue_of) out.put_i32(q);
  out.put_i32(static_cast<std::int32_t>(allocation.queues.size()));
  for (const AllocatedQueue& queue : allocation.queues) {
    put_domain(out, queue.domain);
    out.put_i32(queue.index_in_domain);
    out.put_i32(queue.max_occupancy);
    out.put_i32(static_cast<std::int32_t>(queue.members.size()));
    for (int member : queue.members) out.put_i32(member);
  }
}

QueueAllocation get_allocation(BlobReader& in, int version, int cluster_count) {
  QueueAllocation allocation;
  allocation.ii = in.get_i32();
  if (allocation.ii < 1) fail(cat("verify bundle: allocation II ", allocation.ii));
  const int lifetimes = get_count(in, "lifetime");
  allocation.lifetimes.reserve(static_cast<std::size_t>(lifetimes));
  for (int l = 0; l < lifetimes; ++l) {
    Lifetime lt;
    lt.edge = in.get_i32();
    lt.producer = in.get_i32();
    lt.consumer = in.get_i32();
    lt.push = in.get_i32();
    lt.pop = in.get_i32();
    lt.domain = get_domain(in, version, cluster_count);
    allocation.lifetimes.push_back(lt);
  }
  const int assignments = get_count(in, "queue_of");
  allocation.queue_of.reserve(static_cast<std::size_t>(assignments));
  for (int l = 0; l < assignments; ++l) allocation.queue_of.push_back(in.get_i32());
  const int queues = get_count(in, "queue");
  allocation.queues.reserve(static_cast<std::size_t>(queues));
  for (int q = 0; q < queues; ++q) {
    AllocatedQueue queue;
    queue.domain = get_domain(in, version, cluster_count);
    queue.index_in_domain = in.get_i32();
    queue.max_occupancy = in.get_i32();
    const int members = get_count(in, "queue member");
    queue.members.reserve(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m) queue.members.push_back(in.get_i32());
    allocation.queues.push_back(std::move(queue));
  }
  return allocation;
}

}  // namespace

VerifyReport verify_bundle(const VerifyBundle& bundle) {
  VerifyReport report;
  try {
    bundle.machine.validate();
  } catch (const Error& error) {
    report.add(VerifyRule::kArtifactShape, cat("machine config invalid: ", error.what()));
    return report;
  }
  Ddg graph;
  try {
    graph = Ddg::build(bundle.loop, bundle.machine.latency);
  } catch (const Error& error) {
    report.add(VerifyRule::kLoopStructure, error.what());
    return report;
  }
  return verify_artifacts(bundle.loop, graph, bundle.machine, bundle.schedule,
                          bundle.has_allocation ? &bundle.allocation : nullptr,
                          bundle.check_fanout, bundle.must_fit);
}

std::string encode_verify_bundle(const VerifyBundle& bundle) {
  BlobWriter out;
  out.put_u64(kVerifyBundleMagic);
  serialize_loop(out, bundle.loop);
  serialize_machine(out, bundle.machine);
  serialize_schedule(out, bundle.schedule);
  out.put_bool(bundle.has_allocation);
  if (bundle.has_allocation) put_allocation(out, bundle.allocation);
  out.put_bool(bundle.check_fanout);
  out.put_bool(bundle.must_fit);
  return out.take();
}

VerifyBundle decode_verify_bundle(const std::string& blob) {
  BlobReader in(blob);
  const std::uint64_t magic = in.get_u64();
  int version = 0;
  if (magic == kVerifyBundleMagic) {
    version = 2;
  } else if (magic == kVerifyBundleMagicV1) {
    version = 1;
  } else {
    fail("verify bundle: bad magic");
  }
  VerifyBundle bundle;
  bundle.loop = deserialize_loop(in);
  bundle.machine = deserialize_machine(in, version);
  bundle.schedule = deserialize_schedule(in);
  bundle.has_allocation = in.get_bool();
  if (bundle.has_allocation) {
    bundle.allocation = get_allocation(in, version, bundle.machine.cluster_count());
  }
  bundle.check_fanout = in.get_bool();
  bundle.must_fit = in.get_bool();
  in.require_exhausted("verify bundle");
  return bundle;
}

}  // namespace qvliw
