// Static legality verifier for every back-end artifact (translation
// validation).
//
// The passes re-derive legality from first principles and deliberately
// share no logic with the code that produced the artifact:
//
//   1. DDG-vs-loop consistency — expected register flow edges are rebuilt
//      straight from operands, memory order edges from an independent
//      affine-aliasing derivation; endpoints, latencies, distances and the
//      kMemDepMaxDistance cutoff are all checked against the graph.
//   2. Modulo-schedule legality — sigma(dst) >= sigma(src) + lat - II*dist
//      per edge, conflict freedom on a freshly built modulo occupancy map
//      (not sched/reservation.h), and op-to-cluster/FU-class placement
//      range checks.
//   3. Copy/route legality — every value flow hops at most one
//      interconnect segment, and (when copy insertion was requested) queue
//      fan-out discipline holds: one consumer per value, two for copy
//      results.
//   4. Queue-RF legality — lifetimes re-derived from the schedule, FIFO
//      read order and the one-push/one-pop-per-cycle port rule checked by
//      a joint FIFO simulation per queue (not qrf/qcompat.h's closed
//      form), no read-before-write, and capacity against the machine when
//      the producer claimed the allocation fits.
//
// A diagnostic names the violated rule (verify_rule_name) so tests and
// operators can tell *which* legality condition broke, not just that one
// did.  The verifier is wired in four ways: the pipeline's VerifyStage
// (PipelineOptions::verify), the sweep's sampling SweepOptions::verify_mode,
// the qvliw_verify CLI over dumped bundles, and a randomized fuzz oracle
// cross-checking verdicts against sim/vliwsim.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"
#include "qrf/queue_alloc.h"
#include "sched/schedule.h"

namespace qvliw {

/// The legality rules the verifier can report.  Stable names (see
/// verify_rule_name) are part of the diagnostic format.
enum class VerifyRule : std::uint8_t {
  kArtifactShape,         // op counts of loop/DDG/schedule/allocation disagree
  kLoopStructure,         // Loop::validate failed
  kDdgFlow,               // flow edges disagree with the loop's operands
  kDdgMem,                // memory edges disagree with the affine derivation
  kSchedIncomplete,       // an op has no placement
  kSchedDependence,       // sigma(dst) < sigma(src) + lat - II*dist
  kSchedPlacement,        // cluster or FU instance out of range for the op's class
  kSchedResource,         // two ops share one FU instance's modulo slot
  kRouteAdjacency,        // value flow between non-adjacent clusters
  kRouteFanout,           // more consumers than the queue fan-out discipline allows
  kQueueIi,               // allocation II disagrees with the schedule
  kQueueLifetime,         // lifetime endpoints/push/pop disagree with the schedule
  kQueueDomain,           // lifetime filed under the wrong queue domain
  kQueueAssignment,       // queue_of/members bookkeeping inconsistent
  kQueueReadBeforeWrite,  // pop earlier than push
  kQueueFifo,             // FIFO pop order violated inside one queue
  kQueuePort,             // two pushes (or pops) of one queue in one cycle
  kQueueCapacity,         // claimed-fitting allocation exceeds machine queues/depths
};

[[nodiscard]] std::string_view verify_rule_name(VerifyRule rule);

struct VerifyDiagnostic {
  VerifyRule rule = VerifyRule::kArtifactShape;
  std::string message;  // human-readable, already prefixed with the rule name
};

struct VerifyReport {
  std::vector<VerifyDiagnostic> diagnostics;

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
  [[nodiscard]] int violations() const { return static_cast<int>(diagnostics.size()); }
  [[nodiscard]] bool has_rule(VerifyRule rule) const;

  /// First `limit` diagnostics joined with "; " (all when limit <= 0).
  [[nodiscard]] std::string summary(int limit = 3) const;

  void add(VerifyRule rule, std::string message);
  void merge(VerifyReport other);
};

/// Pass 1: the DDG is exactly what the loop implies.  Every value operand
/// must have one flow edge with the producing opcode's latency and the
/// operand's distance; every memory edge must match the independent
/// affine-aliasing derivation (latency 1, distance within
/// kMemDepMaxDistance).
[[nodiscard]] VerifyReport verify_ddg(const Loop& loop, const Ddg& graph,
                                      const LatencyModel& latency);

/// Pass 2: the schedule is a legal modulo schedule of (loop, graph) on
/// `machine` — complete, dependence-consistent, and conflict-free on an
/// independently rebuilt modulo occupancy map.
[[nodiscard]] VerifyReport verify_modulo_schedule(const Loop& loop, const Ddg& graph,
                                                  const MachineConfig& machine,
                                                  const Schedule& schedule);

/// Pass 3: communication legality on the interconnect (every flow edge
/// spans at most one segment) and — with `check_fanout` — the queue
/// fan-out discipline copy insertion exists to restore.
[[nodiscard]] VerifyReport verify_routing(const Loop& loop, const Ddg& graph,
                                          const MachineConfig& machine, const Schedule& schedule,
                                          bool check_fanout);

/// Pass 4: the queue allocation is legal for (loop, graph, schedule):
/// every flow edge has exactly one lifetime with re-derived push/pop and
/// domain, the queue bookkeeping is consistent, every queue's joint FIFO
/// simulation preserves pop order and the port rule, nothing reads before
/// it is written, and — with `must_fit` — queue counts and depths fit
/// `machine`.
[[nodiscard]] VerifyReport verify_queue_allocation(const Loop& loop, const Ddg& graph,
                                                   const MachineConfig& machine,
                                                   const Schedule& schedule,
                                                   const QueueAllocation& allocation,
                                                   bool must_fit);

/// All passes over one artifact set.  `allocation` may be null (schedule-
/// only checking, e.g. warm-start seed vetting).
[[nodiscard]] VerifyReport verify_artifacts(const Loop& loop, const Ddg& graph,
                                            const MachineConfig& machine,
                                            const Schedule& schedule,
                                            const QueueAllocation* allocation, bool check_fanout,
                                            bool must_fit);

// --- dumped artifact bundles (the qvliw_verify CLI format) -----------------

/// Everything needed to re-verify one compiled loop offline: the scheduled
/// loop (post rewrite), the machine, the schedule, and optionally the
/// queue allocation, plus the flags recording what the producer claimed.
struct VerifyBundle {
  Loop loop;
  MachineConfig machine;
  Schedule schedule;
  bool has_allocation = false;
  QueueAllocation allocation;
  bool check_fanout = true;
  bool must_fit = false;
};

/// Runs every applicable pass over the bundle (the DDG is rebuilt from
/// loop + machine latency, so it cannot be forged independently).
[[nodiscard]] VerifyReport verify_bundle(const VerifyBundle& bundle);

[[nodiscard]] std::string encode_verify_bundle(const VerifyBundle& bundle);

/// Throws Error on truncation, bad magic, or a structurally implausible
/// payload.  The decoded artifacts are exactly as trusted as any other
/// input to the verifier: not at all.
[[nodiscard]] VerifyBundle decode_verify_bundle(const std::string& blob);

}  // namespace qvliw
