#include "workload/kernels.h"

#include "ir/parser.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

const char* kernel_corpus_text() {
  return R"(
# --- BLAS-1 style streaming kernels --------------------------------------

loop daxpy {            # y[i] = a*x[i] + y[i]
  invariant a;
  trip 96;
  x  = load X[i];
  y  = load Y[i];
  ax = fmul x, a;
  s  = fadd ax, y;
  store Y[i], s;
}

loop vadd {             # c[i] = a[i] + b[i]
  trip 96;
  x = load A[i];
  y = load B[i];
  s = fadd x, y;
  store C[i], s;
}

loop vscale {           # y[i] = a * x[i]
  invariant a;
  trip 96;
  x = load X[i];
  s = fmul x, a;
  store Y[i], s;
}

loop vcopy {            # y[i] = x[i]
  trip 96;
  x = load X[i];
  store Y[i], x;
}

loop vtriad {           # a[i] = b[i] + q * c[i]   (STREAM triad)
  invariant q;
  trip 96;
  b = load B[i];
  c = load C[i];
  qc = fmul c, q;
  s  = fadd b, qc;
  store A[i], s;
}

loop offset_add {       # tiny body: maximal unrolling headroom
  trip 96;
  x = load X[i];
  s = add x, 1;
  store Y[i], s;
}

loop vdiv {             # y[i] = x[i] / d  (long-latency MUL-class pressure)
  invariant d;
  trip 96;
  x = load X[i];
  s = div x, d;
  store Y[i], s;
}

# --- reductions -----------------------------------------------------------

loop dot {              # acc += x[i] * y[i]
  trip 96;
  x = load X[i];
  y = load Y[i];
  p = fmul x, y;
  acc = fadd acc@1, p;
  store R[i], acc;
}

loop norm2 {            # acc += x[i] * x[i]   (value used twice: fan-out)
  trip 96;
  x = load X[i];
  p = fmul x, x;
  acc = fadd acc@1, p;
  store R[i], acc;
}

loop prefix_sum {       # s += x[i]; y[i] = s
  trip 96;
  x = load X[i];
  s = fadd s@1, x;
  store Y[i], s;
}

loop dual_acc {         # two independent accumulators (2x reduction ILP)
  trip 96;
  x = load X[i];
  y = load Y[i];
  a0 = fadd a0@1, x;
  a1 = fadd a1@1, y;
  store R[i], a0;
  store S[i], a1;
}

loop correl {           # acc0 += x*y, acc1 += x*x  (shared load, 2 accs)
  trip 96;
  x  = load X[i];
  y  = load Y[i];
  xy = fmul x, y;
  xx = fmul x, x;
  a0 = fadd a0@1, xy;
  a1 = fadd a1@1, xx;
  store R[i], a0;
  store S[i], a1;
}

# --- filters & stencils ----------------------------------------------------

loop stencil3 {         # y[i] = w * (x[i-1] + x[i] + x[i+1])
  invariant w;
  trip 96;
  xm = load X[i-1];
  xc = load X[i];
  xp = load X[i+1];
  t0 = fadd xm, xc;
  t1 = fadd t0, xp;
  s  = fmul t1, w;
  store Y[i], s;
}

loop stencil3_reuse {   # same stencil, loads shared across iterations
  invariant w;
  trip 96;
  xp = load X[i+1];
  t0 = fadd xp@2, xp@1;
  t1 = fadd t0, xp;
  s  = fmul t1, w;
  store Y[i], s;
}

loop fir4 {             # 4-tap FIR, direct form
  invariant c0, c1, c2, c3;
  trip 96;
  x0 = load X[i];
  x1 = load X[i+1];
  x2 = load X[i+2];
  x3 = load X[i+3];
  m0 = fmul x0, c0;
  m1 = fmul x1, c1;
  m2 = fmul x2, c2;
  m3 = fmul x3, c3;
  s0 = fadd m0, m1;
  s1 = fadd m2, m3;
  s  = fadd s0, s1;
  store Y[i], s;
}

loop fir8 {             # 8-tap FIR with register reuse of the delay line
  invariant c0, c1, c2, c3, c4, c5, c6, c7;
  trip 96;
  x  = load X[i];
  m0 = fmul x, c0;
  m1 = fmul x@1, c1;
  m2 = fmul x@2, c2;
  m3 = fmul x@3, c3;
  m4 = fmul x@4, c4;
  m5 = fmul x@5, c5;
  m6 = fmul x@6, c6;
  m7 = fmul x@7, c7;
  s0 = fadd m0, m1;
  s1 = fadd m2, m3;
  s2 = fadd m4, m5;
  s3 = fadd m6, m7;
  t0 = fadd s0, s1;
  t1 = fadd s2, s3;
  s  = fadd t0, t1;
  store Y[i], s;
}

loop interp {           # y[i] = x[i]*(1-t) + x[i+1]*t
  invariant t, onemt;
  trip 96;
  x0 = load X[i];
  x1 = load X[i+1];
  a  = fmul x0, onemt;
  b  = fmul x1, t;
  s  = fadd a, b;
  store Y[i], s;
}

loop cmul_acc {         # complex multiply-accumulate
  trip 96;
  ar = load AR[i];
  ai = load AI[i];
  br = load BR[i];
  bi = load BI[i];
  rr = fmul ar, br;
  ii = fmul ai, bi;
  ri = fmul ar, bi;
  ir = fmul ai, br;
  re = fsub rr, ii;
  im = fadd ri, ir;
  sr = fadd sr@1, re;
  si = fadd si@1, im;
  store CR[i], sr;
  store CI[i], si;
}

# --- recurrences ------------------------------------------------------------

loop rec1 {             # y = a*y' + x   (first-order IIR)
  invariant a;
  trip 96;
  x  = load X[i];
  ay = fmul y@1, a;
  y  = fadd ay, x;
  store Y[i], y;
}

loop rec2 {             # y = a*y' + b*y'' + x  (second-order IIR)
  invariant a, b;
  trip 96;
  x   = load X[i];
  ay  = fmul y@1, a;
  by  = fmul y@2, b;
  s   = fadd ay, by;
  y   = fadd s, x;
  store Y[i], y;
}

loop horner {           # p = p*x + c[i]
  invariant x;
  trip 96;
  c = load C[i];
  px = fmul p@1, x;
  p  = fadd px, c;
  store P[i], p;
}

loop geo_decay {        # s = s/2 + x[i]  (divide in the recurrence)
  trip 48;
  x = load X[i];
  h = div s@1, 2;
  s = fadd h, x;
  store Y[i], s;
}

# --- Livermore-style kernels -------------------------------------------------

loop lk1_hydro {        # x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
  invariant q, r, t;
  trip 96;
  y   = load Y[i];
  z0  = load Z[i+10];
  z1  = load Z[i+11];
  rz  = fmul z0, r;
  tz  = fmul z1, t;
  s   = fadd rz, tz;
  ys  = fmul y, s;
  x   = fadd ys, q;
  store X[i], x;
}

loop lk5_tridiag {      # x[i] = z[i]*(y[i] - x[i-1])  (memory-carried)
  trip 96;
  z  = load Z[i];
  y  = load Y[i];
  xm = load X[i-1];
  d  = fsub y, xm;
  x  = fmul z, d;
  store X[i], x;
}

loop lk11_partial_sum { # x[k] = x[k-1] + y[k]  (memory-carried sum)
  trip 96;
  xm = load X[i-1];
  y  = load Y[i];
  x  = fadd xm, y;
  store X[i], x;
}

loop lk12_first_diff {  # x[k] = y[k+1] - y[k]
  trip 96;
  y0 = load Y[i];
  y1 = load Y[i+1];
  d  = fsub y1, y0;
  store X[i], d;
}

# --- ILP-rich wide bodies ----------------------------------------------------

loop wide8 {            # eight independent mul-add lanes
  invariant k0, k1;
  trip 96;
  a0 = load A[i];
  a1 = load B[i];
  a2 = load C[i];
  a3 = load D[i];
  m0 = fmul a0, k0;
  m1 = fmul a1, k1;
  m2 = fmul a2, k0;
  m3 = fmul a3, k1;
  s0 = fadd m0, 3;
  s1 = fadd m1, 5;
  s2 = fadd m2, 7;
  s3 = fadd m3, 11;
  store E[i], s0;
  store F[i], s1;
  store G[i], s2;
  store H[i], s3;
}

loop chain12 {          # one long intra-iteration dependence chain
  trip 96;
  x  = load X[i];
  t0 = fadd x, 1;
  t1 = fmul t0, 3;
  t2 = fadd t1, 5;
  t3 = fmul t2, 7;
  t4 = fsub t3, 2;
  t5 = fadd t4, t0;
  t6 = fmul t5, 3;
  t7 = fadd t6, 9;
  t8 = fsub t7, t2;
  t9 = fadd t8, 4;
  store Y[i], t9;
}

loop saxpy2 {           # two interleaved daxpys
  invariant a, b;
  trip 96;
  x0 = load X[i];
  y0 = load Y[i];
  u0 = load U[i];
  v0 = load V[i];
  m0 = fmul x0, a;
  m1 = fmul u0, b;
  s0 = fadd m0, y0;
  s1 = fadd m1, v0;
  store Y[i], s0;
  store V[i], s1;
}

loop mixed_index {      # index arithmetic feeding a store
  trip 96;
  x  = load X[i];
  ii = add i, 100;
  s  = mul x, 3;
  t  = add s, ii;
  store Y[i], t;
}

# --- more Livermore / DSP shapes --------------------------------------------

loop lk7_eos {          # equation of state fragment (deep expression tree)
  invariant r, t;
  trip 96;
  u0 = load U[i];
  u1 = load U[i+1];
  u2 = load U[i+2];
  u3 = load U[i+3];
  z  = load Z[i];
  y  = load Y[i];
  ry  = fmul y, r;
  zry = fadd z, ry;
  a   = fmul zry, r;
  a2  = fadd u0, a;
  ru1 = fmul u1, r;
  b   = fadd u2, ru1;
  rb  = fmul b, r;
  c   = fadd u3, rb;
  tc  = fmul c, t;
  x   = fadd a2, tc;
  store X[i], x;
}

loop lk9_integrate {    # predictor integration: wide coefficient sum
  invariant c0, c1, c2, c3, c4;
  trip 96;
  p0 = load P[i];
  p1 = load P[i+1];
  p2 = load P[i+2];
  p3 = load P[i+3];
  p4 = load P[i+4];
  m0 = fmul p0, c0;
  m1 = fmul p1, c1;
  m2 = fmul p2, c2;
  m3 = fmul p3, c3;
  m4 = fmul p4, c4;
  s0 = fadd m0, m1;
  s1 = fadd m2, m3;
  s2 = fadd s0, s1;
  s3 = fadd s2, m4;
  store Q[i], s3;
}

loop butterfly4 {       # radix-2 butterflies over two lanes
  trip 96;
  a0 = load A[i];
  a1 = load B[i];
  b0 = load C[i];
  b1 = load D[i];
  s0 = fadd a0, a1;
  d0 = fsub a0, a1;
  s1 = fadd b0, b1;
  d1 = fsub b0, b1;
  store E[i], s0;
  store F[i], d0;
  store G[i], s1;
  store H[i], d1;
}

loop horner_even_odd {  # two interleaved Horner chains (2 recurrences)
  invariant x2;
  trip 96;
  ce = load CE[i];
  co = load CO[i];
  pe_m = fmul pe@1, x2;
  pe   = fadd pe_m, ce;
  po_m = fmul po@1, x2;
  po   = fadd po_m, co;
  store PE[i], pe;
  store PO[i], po;
}

loop boxfilter5 {       # 5-wide running average with full register reuse
  invariant inv5;
  trip 96;
  x  = load X[i+2];
  t0 = fadd x@4, x@3;
  t1 = fadd x@2, x@1;
  t2 = fadd t0, t1;
  t3 = fadd t2, x;
  s  = fmul t3, inv5;
  store Y[i], s;
}

loop newton_refine {    # y' = y*(2 - d*y): multiplier-heavy recurrence
  trip 64;
  d  = load D[i];
  dy = fmul y@1, d;
  e  = fsub 2, dy;
  y  = fmul y@1, e;
  store Y[i], y;
}

loop l2_distance {      # acc += (a-b)^2: square via fan-out
  trip 96;
  a = load A[i];
  b = load B[i];
  d = fsub a, b;
  sq = fmul d, d;
  acc = fadd acc@1, sq;
  store R[i], acc;
}

loop alpha_blend {      # o = alpha*x + beta*y
  invariant alpha, beta;
  trip 96;
  x  = load X[i];
  y  = load Y[i];
  ax = fmul x, alpha;
  by = fmul y, beta;
  o  = fadd ax, by;
  store O[i], o;
}

loop shifted_prefix {   # store Y[i+1]; mixes register and memory carry
  trip 96;
  x = load X[i];
  y = load Y[i];       # written by iteration i-1's store Y[i+1]
  s = fadd y, x;
  store Y[i+1], s;
}

loop int_mix {          # integer pipeline with a divide tail
  invariant k;
  trip 64;
  x  = load X[i];
  a  = add x, 17;
  b  = mul a, 5;
  c  = sub b, x;
  d  = div c, k;
  store Y[i], d;
}

loop three_way_avg {    # weighted average of three streams
  invariant w0, w1, w2;
  trip 96;
  a  = load A[i];
  b  = load B[i];
  c  = load C[i];
  wa = fmul a, w0;
  wb = fmul b, w1;
  wc = fmul c, w2;
  s0 = fadd wa, wb;
  s1 = fadd s0, wc;
  store O[i], s1;
}

loop damped_spring {    # x'' via two coupled carried values
  invariant dt, k, c;
  trip 64;
  f   = load F[i];
  kx  = fmul x@1, k;
  cv  = fmul v@1, c;
  fs  = fsub f, kx;
  acc = fsub fs, cv;
  dv  = fmul acc, dt;
  v   = fadd v@1, dv;
  dx  = fmul v, dt;
  x   = fadd x@1, dx;
  store XO[i], x;
}
)";
}

std::vector<Loop> kernel_corpus() {
  std::vector<Loop> loops = parse_loops(kernel_corpus_text());
  for (const Loop& loop : loops) loop.validate();
  return loops;
}

Loop kernel_by_name(std::string_view name) {
  for (Loop& loop : kernel_corpus()) {
    if (loop.name == name) return std::move(loop);
  }
  fail(cat("no kernel named '", name, "' in the corpus"));
}

}  // namespace qvliw
