#include "workload/suite.h"

#include <algorithm>

#include "ir/ddg.h"
#include "sched/mii.h"
#include "support/parallel.h"
#include "workload/kernels.h"
#include "xform/unroll.h"

namespace qvliw {

Suite full_suite(const SynthConfig& config) {
  Suite suite;
  suite.loops = kernel_corpus();
  suite.kernel_count = static_cast<int>(suite.loops.size());
  // Keep the total at config.loops (the paper's 1258) including the corpus.
  SynthConfig adjusted = config;
  adjusted.loops = std::max(0, config.loops - suite.kernel_count);
  std::vector<Loop> synthetic = synthesize_suite(adjusted);
  suite.loops.insert(suite.loops.end(), std::make_move_iterator(synthetic.begin()),
                     std::make_move_iterator(synthetic.end()));
  return suite;
}

Suite small_suite(int synthetic, std::uint64_t seed) {
  SynthConfig config;
  config.loops = synthetic;
  config.seed = seed;
  Suite suite;
  suite.loops = kernel_corpus();
  suite.kernel_count = static_cast<int>(suite.loops.size());
  std::vector<Loop> extra = synthesize_suite(config);
  suite.loops.insert(suite.loops.end(), std::make_move_iterator(extra.begin()),
                     std::make_move_iterator(extra.end()));
  return suite;
}

bool is_resource_constrained(const Loop& loop, int max_unroll) {
  // At the per-source-rate-minimising unroll factor on the largest machine
  // studied (18 FUs), is the binding MII term the resource bound?  The
  // comparison happens at a common factor because RecMII floors at 1
  // (II >= 1) while unrolling dilutes that floor across U source
  // iterations.
  const MachineConfig big = MachineConfig::single_cluster_machine(18);
  double best_rate = 1e18;
  bool resource_bound_at_best = false;
  for (int factor = 1; factor <= max_unroll; ++factor) {
    if (loop.op_count() * factor > 512) break;
    const Loop unrolled = factor == 1 ? loop : unroll(loop, factor);
    const Ddg graph = Ddg::build(unrolled, big.latency);
    const MiiInfo mii = compute_mii(unrolled, graph, big);
    if (!mii.feasible) continue;
    const double rate = static_cast<double>(mii.mii) / factor;
    if (rate < best_rate - 1e-9) {
      best_rate = rate;
      resource_bound_at_best = mii.res_mii >= mii.rec_mii;
    }
  }
  return resource_bound_at_best;
}

Suite resource_constrained_subset(const Suite& suite, int max_unroll) {
  std::vector<char> keep(suite.loops.size(), 0);
  parallel_for(suite.loops.size(), [&](std::size_t i) {
    keep[i] = is_resource_constrained(suite.loops[i], max_unroll) ? 1 : 0;
  });
  Suite subset;
  for (std::size_t i = 0; i < suite.loops.size(); ++i) {
    if (!keep[i]) continue;
    subset.loops.push_back(suite.loops[i]);
    if (i < static_cast<std::size_t>(suite.kernel_count)) ++subset.kernel_count;
  }
  return subset;
}

}  // namespace qvliw
