// Calibrated synthetic loop generator.
//
// Stands in for the paper's 1258 Perfect Club innermost loops.  The
// scheduler, allocators and partitioner only observe the DDG — operation
// mix, latencies, dependence distances and recurrence circuits — so the
// generator is calibrated on those axes to the published statistics of
// scientific innermost loops of the era: body sizes of a few to a few
// dozen operations (log-normally distributed), roughly a third memory
// operations, and about half the loops carrying a register and/or memory
// recurrence of small distance.  tests/test_workload.cpp pins the
// calibration; EXPERIMENTS.md records the resulting suite-level shape
// checks against the paper's aggregates.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/loop.h"
#include "support/rng.h"

namespace qvliw {

struct SynthConfig {
  int loops = 1258;          // the paper's suite size
  std::uint64_t seed = 1998; // IPPS'98

  // Body size: a bimodal mixture, as in real innermost-loop populations —
  // with probability small_loop_prob a tiny streaming body (uniform in
  // [small_lo, small_hi]), otherwise clamp(round(lognormal(mu, sigma)),
  // min_ops, max_ops).  The small mode is what loop unrolling (Fig. 4)
  // exists for: bodies too narrow to fill a wide machine at integer II.
  double small_loop_prob = 0.35;
  int small_lo = 3;
  int small_hi = 8;
  double size_mu = 2.5;
  double size_sigma = 0.6;
  int min_ops = 4;
  int max_ops = 64;

  // Memory mix (fractions of the body, drawn per loop).
  double load_fraction_lo = 0.15;
  double load_fraction_hi = 0.32;
  double store_fraction_lo = 0.06;
  double store_fraction_hi = 0.16;

  // Probability that a loop carries >= 1 register recurrence; extra
  // recurrences are added geometrically.
  double recurrence_prob = 0.55;
  double extra_recurrence_prob = 0.35;

  // Probability of a memory-carried recurrence (store feeding a later
  // iteration's load of the same array).
  double memory_recurrence_prob = 0.12;

  // Operand sourcing.
  double invariant_operand_prob = 0.14;
  double immediate_operand_prob = 0.10;
  double index_operand_prob = 0.03;

  int max_invariants = 4;
  int max_arrays = 4;
  int trip_lo = 24;
  int trip_hi = 192;
};

/// Generates one loop (deterministic in rng state and index).
[[nodiscard]] Loop synthesize_loop(Rng& rng, const SynthConfig& config, int index);

/// Generates config.loops loops from config.seed.
[[nodiscard]] std::vector<Loop> synthesize_suite(const SynthConfig& config = {});

}  // namespace qvliw
