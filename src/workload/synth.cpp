#include "workload/synth.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

Opcode pick_arith(Rng& rng) {
  static const std::vector<double> weights = {
      0.30,  // kFAdd
      0.17,  // kAdd
      0.26,  // kFMul
      0.10,  // kMul
      0.08,  // kSub
      0.05,  // kFSub
      0.02,  // kDiv
      0.02,  // kFDiv
  };
  static const Opcode opcodes[] = {Opcode::kFAdd, Opcode::kAdd, Opcode::kFMul, Opcode::kMul,
                                   Opcode::kSub,  Opcode::kFSub, Opcode::kDiv, Opcode::kFDiv};
  return opcodes[rng.weighted(weights)];
}

/// Picks a defined value with a bias toward recent definitions (producer
/// locality, as in real straight-line bodies).
int pick_value(Rng& rng, const std::vector<int>& values) {
  QVLIW_ASSERT(!values.empty(), "pick_value: no values yet");
  if (values.size() <= 2 || rng.chance(0.35)) return rng.pick(values);
  const std::size_t window = std::min<std::size_t>(8, values.size());
  const std::size_t base = values.size() - window;
  return values[base + static_cast<std::size_t>(rng.uniform_i64(0, static_cast<std::int64_t>(window) - 1))];
}

}  // namespace

Loop synthesize_loop(Rng& rng, const SynthConfig& config, int index) {
  Loop loop;
  loop.name = cat("synth", index);
  loop.trip_hint = rng.uniform_int(config.trip_lo, config.trip_hi);

  const int size =
      rng.chance(config.small_loop_prob)
          ? rng.uniform_int(config.small_lo, config.small_hi)
          : std::clamp(static_cast<int>(std::lround(
                           std::exp(config.size_mu + config.size_sigma * rng.normal()))),
                       config.min_ops, config.max_ops);

  const int n_invariants = rng.uniform_int(0, config.max_invariants);
  for (int v = 0; v < n_invariants; ++v) loop.intern_invariant(cat("c", v));
  const int n_arrays = rng.uniform_int(1, config.max_arrays);
  for (int a = 0; a < n_arrays; ++a) loop.intern_array(cat("A", a));

  int loads = std::max(1, static_cast<int>(std::lround(
                              size * rng.uniform(config.load_fraction_lo, config.load_fraction_hi))));
  int stores = std::max(1, static_cast<int>(std::lround(
                               size * rng.uniform(config.store_fraction_lo,
                                                  config.store_fraction_hi))));
  int arith = std::max(1, size - loads - stores);

  // Memory-carried recurrence: one array gets store A[i] ... load A[i-d].
  const bool memory_recurrence = rng.chance(config.memory_recurrence_prob);
  const int recurrence_array = 0;
  const int recurrence_dist = rng.chance(0.7) ? 1 : 2;

  std::vector<int> values;  // op indices defining values
  int name_counter = 0;
  auto fresh = [&name_counter] { return cat("v", name_counter++); };

  // Loads up front (typical of scheduled bodies); offsets in [-2, 2].
  for (int l = 0; l < loads; ++l) {
    Op op;
    op.opcode = Opcode::kLoad;
    op.name = fresh();
    if (memory_recurrence && l == 0) {
      op.array = recurrence_array;
      op.mem_offset = -recurrence_dist;
    } else {
      op.array = rng.uniform_int(0, n_arrays - 1);
      op.mem_offset = rng.uniform_int(-2, 2);
    }
    values.push_back(loop.add_op(std::move(op)));
  }

  // Arithmetic body.
  for (int a = 0; a < arith; ++a) {
    Op op;
    op.opcode = pick_arith(rng);
    op.name = fresh();
    for (int slot = 0; slot < 2; ++slot) {
      const double draw = rng.uniform();
      if (slot == 1 && draw < config.invariant_operand_prob && n_invariants > 0) {
        op.args.push_back(Operand::invariant_ref(rng.uniform_int(0, n_invariants - 1)));
      } else if (slot == 1 && draw < config.invariant_operand_prob + config.immediate_operand_prob) {
        op.args.push_back(Operand::immediate(rng.uniform_i64(1, 9)));
      } else if (slot == 1 &&
                 draw < config.invariant_operand_prob + config.immediate_operand_prob +
                            config.index_operand_prob) {
        op.args.push_back(Operand::index(rng.uniform_int(-2, 2)));
      } else {
        op.args.push_back(Operand::value(pick_value(rng, values), 0));
      }
    }
    values.push_back(loop.add_op(std::move(op)));
  }

  // Stores; prefer recently produced values.
  for (int s = 0; s < stores; ++s) {
    Op op;
    op.opcode = Opcode::kStore;
    if (memory_recurrence && s == 0) {
      op.array = recurrence_array;
      op.mem_offset = 0;
    } else {
      op.array = rng.uniform_int(0, n_arrays - 1);
      op.mem_offset = rng.uniform_int(-1, 1);
    }
    op.args.push_back(Operand::value(pick_value(rng, values), 0));
    loop.add_op(std::move(op));
  }

  // Register recurrences: rewire an operand of an early arithmetic op to a
  // later value at distance >= 1, then force a forward chain from the
  // early op to that value so a genuine circuit exists.
  if (rng.chance(config.recurrence_prob)) {
    int recurrences = 1;
    while (rng.chance(config.extra_recurrence_prob) && recurrences < 3) ++recurrences;
    std::vector<int> arith_ops;
    for (int v = 0; v < loop.op_count(); ++v) {
      const Opcode opc = loop.ops[static_cast<std::size_t>(v)].opcode;
      if (!is_memory(opc)) arith_ops.push_back(v);
    }
    for (int r = 0; r < recurrences && arith_ops.size() >= 2; ++r) {
      const std::size_t head_pos =
          static_cast<std::size_t>(rng.uniform_i64(0, static_cast<std::int64_t>(arith_ops.size()) - 2));
      const std::size_t tail_pos = static_cast<std::size_t>(rng.uniform_i64(
          static_cast<std::int64_t>(head_pos) + 1, static_cast<std::int64_t>(arith_ops.size()) - 1));
      const int head = arith_ops[head_pos];
      const int tail = arith_ops[tail_pos];
      const int dist = rng.chance(0.8) ? 1 : 2;
      // Close the circuit: head reads tail@dist ...
      loop.ops[static_cast<std::size_t>(head)].args[0] = Operand::value(tail, dist);
      // ... and tail (transitively) reads head: force a direct chain by
      // rewiring intermediate ops' first operands along head -> tail.
      int from = head;
      for (std::size_t pos = head_pos + 1; pos <= tail_pos; ++pos) {
        const int node = arith_ops[pos];
        if (node == tail || rng.chance(0.5)) {
          loop.ops[static_cast<std::size_t>(node)].args[rng.chance(0.3) ? 1 : 0] =
              Operand::value(from, 0);
          from = node;
        }
      }
      if (from != tail) {
        loop.ops[static_cast<std::size_t>(tail)].args[0] = Operand::value(from, 0);
      }
    }
  }

  // Consume dead values where cheap: rewire immediate/invariant second
  // operands onto unused values (keeps op counts intact, avoids dead code).
  {
    std::vector<int> use_count(static_cast<std::size_t>(loop.op_count()), 0);
    for (const Op& op : loop.ops) {
      for (const Operand& arg : op.args) {
        if (arg.is_value()) ++use_count[static_cast<std::size_t>(arg.value_op)];
      }
    }
    for (int v = 0; v < loop.op_count(); ++v) {
      if (!loop.ops[static_cast<std::size_t>(v)].defines_value()) continue;
      if (use_count[static_cast<std::size_t>(v)] > 0) continue;
      // Find a later op with a non-value operand to absorb this value.
      for (int u = v + 1; u < loop.op_count(); ++u) {
        Op& candidate = loop.ops[static_cast<std::size_t>(u)];
        if (is_memory(candidate.opcode)) continue;
        bool rewired = false;
        for (Operand& arg : candidate.args) {
          if (!arg.is_value()) {
            arg = Operand::value(v, 0);
            rewired = true;
            break;
          }
        }
        if (rewired) break;
      }
    }
  }

  loop.validate();
  return loop;
}

std::vector<Loop> synthesize_suite(const SynthConfig& config) {
  Rng rng(config.seed);
  std::vector<Loop> loops;
  loops.reserve(static_cast<std::size_t>(config.loops));
  for (int i = 0; i < config.loops; ++i) {
    Rng child = rng.fork();
    loops.push_back(synthesize_loop(child, config, i));
  }
  return loops;
}

}  // namespace qvliw
