// Hand-written corpus of classic innermost loops.
//
// These are the loop shapes the Perfect Club (and the Livermore loops)
// consist of: streaming BLAS-1 kernels, filters, stencils, reductions,
// first/second-order recurrences, and memory-carried recurrences.  They
// anchor the synthetic suite in recognisable code and serve as the
// end-to-end correctness fixtures (every one is scheduled, allocated,
// simulated and checked against the reference interpreter in the tests).
#pragma once

#include <vector>

#include "ir/loop.h"

namespace qvliw {

/// The DSL source of the corpus (parseable by parse_loops).
[[nodiscard]] const char* kernel_corpus_text();

/// Parsed corpus (25+ loops, validated).
[[nodiscard]] std::vector<Loop> kernel_corpus();

/// Finds a corpus kernel by name; fails if absent.
[[nodiscard]] Loop kernel_by_name(std::string_view name);

}  // namespace qvliw
