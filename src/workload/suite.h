// Benchmark suite assembly and loop classification.
#pragma once

#include <vector>

#include "ir/loop.h"
#include "machine/machine.h"
#include "workload/synth.h"

namespace qvliw {

struct Suite {
  std::vector<Loop> loops;
  int kernel_count = 0;  // loops[0..kernel_count) are the hand-written corpus
};

/// Hand-written corpus followed by the synthetic loops (config.loops of
/// them; the default reproduces the paper's 1258-loop suite size in total).
[[nodiscard]] Suite full_suite(const SynthConfig& config = {});

/// A small suite for unit tests (corpus + a few dozen synthetic loops).
[[nodiscard]] Suite small_suite(int synthetic = 48, std::uint64_t seed = 42);

/// Fig. 9's subset: loops whose execution is limited by FU availability
/// even on the largest machine studied (18 FUs), i.e. the recurrence bound
/// never overtakes the best per-source-iteration resource bound achievable
/// with unrolling up to `max_unroll`.
[[nodiscard]] bool is_resource_constrained(const Loop& loop, int max_unroll = 8);

/// The suite restricted to its resource-constrained loops (kernel_count is
/// recomputed; classification runs in parallel across the worker pool).
[[nodiscard]] Suite resource_constrained_subset(const Suite& suite, int max_unroll = 8);

}  // namespace qvliw
