// Conventional (random-access) register file baseline.
//
// With a conventional RF a value is written once no matter how many
// readers it has (Fig. 1b of the paper); the register is live from the
// producer's writeback to the last consumer's read.  For modulo schedules
// the register requirement is MaxLive: the steady-state maximum of
// simultaneously live value instances — the register count a rotating
// register file needs.  Used as the baseline the QRF scheme is compared
// against and by the register-pressure diagnostics.
#pragma once

#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace qvliw {

struct RfLifetime {
  int producer = -1;
  int start = 0;  // sigma(producer) + latency
  int end = 0;    // max over consumers of sigma(consumer) + II*distance
};

/// Per-value register lifetimes (one per value-defining op with >= 1 use;
/// unused values occupy their writeback cycle only).
[[nodiscard]] std::vector<RfLifetime> rf_lifetimes(const Loop& loop, const Ddg& graph,
                                                   const LatencyModel& lat,
                                                   const Schedule& schedule);

/// MaxLive register requirement of the schedule.
[[nodiscard]] int register_requirement(const Loop& loop, const Ddg& graph,
                                       const LatencyModel& lat, const Schedule& schedule);

}  // namespace qvliw
