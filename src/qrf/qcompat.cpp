#include "qrf/qcompat.h"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "support/diagnostics.h"

namespace qvliw {

bool q_compatible(int push_a, int pop_a, int push_b, int pop_b, int ii) {
  check(ii >= 1, "q_compatible: ii must be >= 1");
  check(pop_a >= push_a && pop_b >= push_b, "q_compatible: pop before push");
  // Order so that a has the longer residency.
  if (pop_a - push_a < pop_b - push_b) {
    std::swap(push_a, push_b);
    std::swap(pop_a, pop_b);
  }
  const int d = (pop_a - push_a) - (pop_b - push_b);
  if (d >= ii) return false;  // some instance pair always collides
  const int x = ((push_b - push_a) % ii + ii) % ii;
  return x > d;
}

bool q_compatible(const Lifetime& a, const Lifetime& b, int ii) {
  return q_compatible(a.push, a.pop, b.push, b.pop, ii);
}

bool q_compatible_bruteforce(int push_a, int pop_a, int push_b, int pop_b, int ii) {
  check(ii >= 1, "q_compatible_bruteforce: ii must be >= 1");
  check(pop_a >= push_a && pop_b >= push_b, "q_compatible_bruteforce: pop before push");
  // Enough periods that every instance-pair phase interaction occurs even
  // when the representatives' push times are far apart (deep pipelines).
  const int max_len = std::max(pop_a - push_a, pop_b - push_b);
  const int skew = std::abs(push_a - push_b);
  const int periods = (max_len + skew) / ii + 8;

  // Tag = (lifetime id, iteration). Gather push/pop events per cycle.
  struct Events {
    std::vector<std::pair<int, int>> pushes;
    std::vector<std::pair<int, int>> pops;
  };
  std::map<long long, Events> timeline;
  for (int k = 0; k < periods; ++k) {
    timeline[static_cast<long long>(push_a) + static_cast<long long>(k) * ii].pushes.push_back({0, k});
    timeline[static_cast<long long>(pop_a) + static_cast<long long>(k) * ii].pops.push_back({0, k});
    timeline[static_cast<long long>(push_b) + static_cast<long long>(k) * ii].pushes.push_back({1, k});
    timeline[static_cast<long long>(pop_b) + static_cast<long long>(k) * ii].pops.push_back({1, k});
  }

  std::deque<std::pair<int, int>> fifo;
  for (auto& [cycle, events] : timeline) {
    (void)cycle;
    if (events.pushes.size() > 1) return false;  // one write port per queue
    if (events.pops.size() > 1) return false;    // one read port per queue
    // Pushes land at the start of the cycle, pops read at the end, so a
    // zero-length lifetime passes through within its cycle.
    for (const auto& tag : events.pushes) fifo.push_back(tag);
    for (const auto& tag : events.pops) {
      if (fifo.empty() || fifo.front() != tag) return false;  // FIFO order broken
      fifo.pop_front();
    }
  }
  return true;
}

}  // namespace qvliw
