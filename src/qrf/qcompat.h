// The paper's Q-Compatibility test (Theorem 1.1).
//
// Two periodic lifetimes may share one FIFO queue iff their instances are
// always pushed and popped in the same relative order, with no two pushes
// (or pops) of the queue in the same cycle.
//
// Derivation used here (tests prove it equivalent to brute-force FIFO
// simulation): take production times Pa, Pb and residency lengths
// La = Ca - Pa >= Lb = Cb - Pb.  A conflicting pair of instances exists
// iff some integer x with x ≡ (Pb - Pa) (mod II) lies in [0, La - Lb]:
//   x = 0         -> simultaneous pushes;
//   x = La - Lb   -> simultaneous pops;
//   0 < x < La-Lb -> b's instance is pushed after a's but popped before it
//                    (FIFO order violated).
// Hence the lifetimes are Q-compatible iff
//
//     (Pb - Pa) mod II  >  La - Lb,
//
// the compatibility equation of Theorem 1.1 expressed on production times.
#pragma once

#include "qrf/lifetime.h"

namespace qvliw {

/// O(1) compatibility test on (push, pop) representatives.
[[nodiscard]] bool q_compatible(int push_a, int pop_a, int push_b, int pop_b, int ii);

/// Convenience overload on lifetimes (domains are not inspected).
[[nodiscard]] bool q_compatible(const Lifetime& a, const Lifetime& b, int ii);

/// Ground-truth oracle: simulates the two lifetimes sharing one FIFO from
/// an empty queue over enough periods to reach steady state, checking
/// FIFO pop order and the one-push/one-pop-per-cycle port limits.
/// Intended for tests; quadratic in the number of simulated instances.
[[nodiscard]] bool q_compatible_bruteforce(int push_a, int pop_a, int push_b, int pop_b, int ii);

}  // namespace qvliw
