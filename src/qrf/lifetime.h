// Queue-resident lifetimes of a modulo schedule.
//
// After copy insertion every produced value instance has exactly one
// consumer per queue, so each register *flow edge* of the DDG is one
// periodic lifetime: iteration j's instance is pushed at
// sigma(src)+lat(src)+j*II and popped at sigma(dst)+(j+dist)*II.
// The lifetime records the j=0 representative (push, pop) pair plus the
// queue *domain* it must live in: the producer cluster's private QRF, or
// one directed interconnect segment when producer and consumer sit in
// adjacent clusters.
#pragma once

#include <string>
#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace qvliw {

/// One pool of physical queues: a cluster's private QRF or one directed
/// interconnect segment, named by its canonical id (Topology::segment).
/// On a ring the canonical order is the historical one — clockwise
/// segments 0..k-1 then counter-clockwise segments k..2k-1 — so domain
/// ordering (and with it queue-allocation processing order) is unchanged
/// from the cw/ccw encoding this replaced.
struct QueueDomain {
  enum class Kind : std::uint8_t { kPrivate, kSegment };
  Kind kind = Kind::kPrivate;
  int index = 0;  // cluster for kPrivate; canonical segment id for kSegment

  friend bool operator==(const QueueDomain&, const QueueDomain&) = default;
  friend auto operator<=>(const QueueDomain&, const QueueDomain&) = default;
};

/// Diagnostic name of a domain on `topology`: "private[c]" or the
/// topology's segment name ("ring-cw[i]", "mesh[a->b]", ...).
[[nodiscard]] std::string domain_name(const Topology& topology, const QueueDomain& domain);

struct Lifetime {
  int edge = -1;      // DDG edge index (always a kFlow edge)
  int producer = -1;  // op
  int consumer = -1;  // op
  int push = 0;       // sigma(producer) + latency(producer)
  int pop = 0;        // sigma(consumer) + II * distance
  QueueDomain domain;

  /// Residency length in cycles; >= 0 in any valid schedule.
  [[nodiscard]] int length() const { return pop - push; }
};

/// Resolves the queue domain of a flow edge given the placements of its
/// endpoints.  Fails (Error) when the clusters are not adjacent on the
/// topology: the partitioner guarantees adjacency, so a violation is an
/// internal error.
[[nodiscard]] QueueDomain domain_of_edge(const Topology& topology, int producer_cluster,
                                         int consumer_cluster);

/// Extracts every flow edge's lifetime from a complete schedule.
[[nodiscard]] std::vector<Lifetime> extract_lifetimes(const Loop& loop, const Ddg& graph,
                                                      const MachineConfig& machine,
                                                      const Schedule& schedule);

/// Number of live instances of a (push, pop, II)-periodic lifetime at
/// absolute cycle `t`, counting residency inclusively on both ends
/// (instances with push+k*II <= t <= pop+k*II, k >= 0).
[[nodiscard]] int live_instances(int push, int pop, int ii, long long t);

/// Steady-state maximum of live_instances over one period.
[[nodiscard]] int max_live_instances(int push, int pop, int ii);

}  // namespace qvliw
