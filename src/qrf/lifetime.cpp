#include "qrf/lifetime.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {
long long floor_div(long long a, long long b) {
  QVLIW_ASSERT(b > 0, "floor_div: divisor must be positive");
  long long q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}
}  // namespace

std::string domain_name(const Topology& topology, const QueueDomain& domain) {
  switch (domain.kind) {
    case QueueDomain::Kind::kPrivate:
      return cat("private[", domain.index, "]");
    case QueueDomain::Kind::kSegment:
      return topology.segment_name(domain.index);
  }
  QVLIW_ASSERT(false, "bad QueueDomain kind");
}

QueueDomain domain_of_edge(const Topology& topology, int producer_cluster,
                           int consumer_cluster) {
  if (producer_cluster == consumer_cluster) {
    return {QueueDomain::Kind::kPrivate, producer_cluster};
  }
  const int segment = topology.segment_between(producer_cluster, consumer_cluster);
  if (segment >= 0) return {QueueDomain::Kind::kSegment, segment};
  fail(cat("value flow between non-adjacent clusters ", producer_cluster, " and ",
           consumer_cluster, " (", topology.kind_name(), " of ", topology.cluster_count(), ")"));
}

std::vector<Lifetime> extract_lifetimes(const Loop& loop, const Ddg& graph,
                                        const MachineConfig& machine, const Schedule& schedule) {
  check(schedule.complete(), "extract_lifetimes: schedule incomplete");
  const Topology topology = machine.topology();
  std::vector<Lifetime> lifetimes;
  for (int e = 0; e < graph.edge_count(); ++e) {
    const DepEdge& edge = graph.edge(e);
    if (!edge.is_value_flow()) continue;
    Lifetime lt;
    lt.edge = e;
    lt.producer = edge.src;
    lt.consumer = edge.dst;
    lt.push = schedule.cycle(edge.src) +
              machine.latency.of(loop.ops[static_cast<std::size_t>(edge.src)].opcode);
    lt.pop = schedule.cycle(edge.dst) + schedule.ii() * edge.distance;
    QVLIW_ASSERT(lt.pop >= lt.push, "lifetime with pop before push (dependence violation)");
    lt.domain = domain_of_edge(topology, schedule.cluster(edge.src), schedule.cluster(edge.dst));
    lifetimes.push_back(lt);
  }
  return lifetimes;
}

int live_instances(int push, int pop, int ii, long long t) {
  check(ii >= 1, "live_instances: ii must be >= 1");
  check(pop >= push, "live_instances: pop before push");
  // Count k >= 0 with push + k*ii <= t and t <= pop + k*ii:
  //   k <= floor((t - push) / ii)  and  k >= ceil((t - pop) / ii).
  const long long k_hi = floor_div(t - push, ii);
  const long long k_lo = std::max<long long>(0, -floor_div(pop - t, ii));
  if (k_hi < k_lo) return 0;
  return static_cast<int>(k_hi - k_lo + 1);
}

int max_live_instances(int push, int pop, int ii) {
  // Steady state is reached once t >= pop; scan one period beyond that.
  const long long t0 = pop;
  int best = 0;
  for (int phase = 0; phase < ii; ++phase) {
    best = std::max(best, live_instances(push, pop, ii, t0 + phase));
  }
  return best;
}

}  // namespace qvliw
