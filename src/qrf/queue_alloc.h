// Queue register file allocation.
//
// Partitions the lifetimes of a schedule into queues, per domain (private
// QRF of each cluster; each directed interconnect segment).  All members of a
// queue must be pairwise Q-compatible — pairwise consistency implies a
// globally consistent FIFO interleaving because push times impose a total
// order that every pair's pops follow.  Exact minimisation is a clique
// cover, so the allocator is the classic greedy: lifetimes in ascending
// push order, first-fit into existing queues.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "qrf/lifetime.h"

namespace qvliw {

struct AllocatedQueue {
  QueueDomain domain;
  int index_in_domain = 0;
  std::vector<int> members;  // lifetime indices, ascending push time
  int max_occupancy = 0;     // positions needed (steady-state maximum)
};

struct QueueAllocation {
  int ii = 1;
  std::vector<Lifetime> lifetimes;
  std::vector<int> queue_of;          // lifetime index -> queue id
  std::vector<AllocatedQueue> queues;

  /// Queues used in one domain.
  [[nodiscard]] int domain_queue_count(const QueueDomain& domain) const;

  /// Largest private-QRF demand over clusters.
  [[nodiscard]] int max_private_queues() const;

  /// Largest demand over interconnect segments.
  [[nodiscard]] int max_segment_queues() const;

  /// Total queues across every domain (the paper's Fig. 3 metric on
  /// single-cluster machines, where all queues are private).
  [[nodiscard]] int total_queues() const { return static_cast<int>(queues.size()); }

  /// Deepest queue (positions).
  [[nodiscard]] int max_positions() const;

  /// Configured-capacity check; returns human-readable violations
  /// (empty == the allocation fits `machine`).
  [[nodiscard]] std::vector<std::string> capacity_violations(const MachineConfig& machine) const;
};

/// Allocates queues for a complete schedule.  Always succeeds (queue
/// *counts* are unbounded here); capacity_violations() reports whether the
/// result fits a concrete machine.
[[nodiscard]] QueueAllocation allocate_queues(const Loop& loop, const Ddg& graph,
                                              const MachineConfig& machine,
                                              const Schedule& schedule);

}  // namespace qvliw
