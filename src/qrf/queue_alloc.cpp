#include "qrf/queue_alloc.h"

#include <algorithm>
#include <cstdint>

#include "qrf/qcompat.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

int QueueAllocation::domain_queue_count(const QueueDomain& domain) const {
  int count = 0;
  for (const AllocatedQueue& q : queues) {
    if (q.domain == domain) ++count;
  }
  return count;
}

int QueueAllocation::max_private_queues() const {
  // index_in_domain is dense per domain, so the per-domain count is
  // max(index_in_domain) + 1 — no per-domain tally needed.
  int best = 0;
  for (const AllocatedQueue& q : queues) {
    if (q.domain.kind == QueueDomain::Kind::kPrivate) best = std::max(best, q.index_in_domain + 1);
  }
  return best;
}

int QueueAllocation::max_segment_queues() const {
  int best = 0;
  for (const AllocatedQueue& q : queues) {
    if (q.domain.kind == QueueDomain::Kind::kPrivate) continue;
    best = std::max(best, q.index_in_domain + 1);
  }
  return best;
}

int QueueAllocation::max_positions() const {
  int best = 0;
  for (const AllocatedQueue& q : queues) best = std::max(best, q.max_occupancy);
  return best;
}

std::vector<std::string> QueueAllocation::capacity_violations(const MachineConfig& machine) const {
  std::vector<std::string> violations;
  const Topology topology = machine.topology();
  std::map<QueueDomain, int> counts;
  std::map<QueueDomain, int> depths;
  for (const AllocatedQueue& q : queues) {
    ++counts[q.domain];
    depths[q.domain] = std::max(depths[q.domain], q.max_occupancy);
  }
  for (const auto& [domain, count] : counts) {
    const bool is_private = domain.kind == QueueDomain::Kind::kPrivate;
    const int queue_limit = is_private ? machine.cluster(domain.index).private_queues
                                       : machine.segment.queues_per_segment;
    const int depth_limit =
        is_private ? machine.cluster(domain.index).queue_depth : machine.segment.queue_depth;
    if (count > queue_limit) {
      violations.push_back(cat(domain_name(topology, domain), ": needs ", count,
                               " queues, machine has ", queue_limit));
    }
    if (depths.at(domain) > depth_limit) {
      violations.push_back(cat(domain_name(topology, domain), ": needs depth ", depths.at(domain),
                               ", machine has ", depth_limit));
    }
  }
  return violations;
}

QueueAllocation allocate_queues(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                                const Schedule& schedule) {
  QueueAllocation allocation;
  allocation.ii = schedule.ii();
  allocation.lifetimes = extract_lifetimes(loop, graph, machine, schedule);
  allocation.queue_of.assign(allocation.lifetimes.size(), -1);
  allocation.queues.reserve(allocation.lifetimes.size());  // worst case: one queue each

  // Flat (push, pop) mirrors of the lifetimes: the compatibility scans and
  // the occupancy analysis below touch only these two ints per lifetime,
  // so they iterate contiguous arrays instead of the full Lifetime records.
  const std::size_t count = allocation.lifetimes.size();
  std::vector<std::int32_t> push(count);
  std::vector<std::int32_t> pop(count);
  for (std::size_t i = 0; i < count; ++i) {
    push[i] = allocation.lifetimes[i].push;
    pop[i] = allocation.lifetimes[i].pop;
  }

  // Stable processing order: by domain, then push time, then pop, then edge.
  std::vector<int> order(allocation.lifetimes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Lifetime& la = allocation.lifetimes[static_cast<std::size_t>(a)];
    const Lifetime& lb = allocation.lifetimes[static_cast<std::size_t>(b)];
    if (la.domain != lb.domain) return la.domain < lb.domain;
    if (la.push != lb.push) return la.push < lb.push;
    if (la.pop != lb.pop) return la.pop < lb.pop;
    return la.edge < lb.edge;
  });

  // The processing order groups lifetimes by domain, so a domain's queues
  // are created contiguously: a running counter gives index_in_domain and
  // the first queue of the current domain, with no rescans of the queue
  // list for either.
  const int ii = allocation.ii;
  QueueDomain current_domain{};
  int domain_first_queue = 0;   // index of the current domain's first queue
  int domain_queue_count = 0;   // queues created for the current domain
  bool have_domain = false;
  for (int lt_index : order) {
    const Lifetime& lt = allocation.lifetimes[static_cast<std::size_t>(lt_index)];
    if (!have_domain || lt.domain != current_domain) {
      current_domain = lt.domain;
      domain_first_queue = static_cast<int>(allocation.queues.size());
      domain_queue_count = 0;
      have_domain = true;
    }
    int target = -1;
    for (int q = domain_first_queue; q < domain_first_queue + domain_queue_count; ++q) {
      AllocatedQueue& queue = allocation.queues[static_cast<std::size_t>(q)];
      bool fits = true;
      for (int member : queue.members) {
        const std::size_t m = static_cast<std::size_t>(member);
        if (!q_compatible(push[m], pop[m], push[static_cast<std::size_t>(lt_index)],
                          pop[static_cast<std::size_t>(lt_index)], ii)) {
          fits = false;
          break;
        }
      }
      if (fits) {
        target = q;
        break;
      }
    }
    if (target < 0) {
      AllocatedQueue queue;
      queue.domain = lt.domain;
      queue.index_in_domain = domain_queue_count++;
      allocation.queues.push_back(std::move(queue));
      target = static_cast<int>(allocation.queues.size()) - 1;
    }
    allocation.queues[static_cast<std::size_t>(target)].members.push_back(lt_index);
    allocation.queue_of[static_cast<std::size_t>(lt_index)] = target;
  }

  // Steady-state positions per queue: maximum summed occupancy over one
  // period, evaluated past the longest lifetime's first pop.
  for (AllocatedQueue& queue : allocation.queues) {
    long long t0 = 0;
    for (int member : queue.members) {
      t0 = std::max<long long>(t0, pop[static_cast<std::size_t>(member)]);
    }
    int best = 0;
    for (int phase = 0; phase < ii; ++phase) {
      int live = 0;
      for (int member : queue.members) {
        const std::size_t m = static_cast<std::size_t>(member);
        live += live_instances(push[m], pop[m], ii, t0 + phase);
      }
      best = std::max(best, live);
    }
    queue.max_occupancy = best;
  }

  return allocation;
}

}  // namespace qvliw
