#include "qrf/rf_alloc.h"

#include <algorithm>

#include "qrf/lifetime.h"
#include "support/diagnostics.h"

namespace qvliw {

std::vector<RfLifetime> rf_lifetimes(const Loop& loop, const Ddg& graph, const LatencyModel& lat,
                                     const Schedule& schedule) {
  check(schedule.complete(), "rf_lifetimes: schedule incomplete");
  std::vector<RfLifetime> lifetimes;
  for (int op = 0; op < loop.op_count(); ++op) {
    if (!loop.ops[static_cast<std::size_t>(op)].defines_value()) continue;
    RfLifetime lt;
    lt.producer = op;
    lt.start = schedule.cycle(op) + lat.of(loop.ops[static_cast<std::size_t>(op)].opcode);
    lt.end = lt.start;  // a dead value still occupies its writeback cycle
    for (int e : graph.out_edges(op)) {
      const DepEdge& edge = graph.edge(e);
      if (!edge.is_value_flow()) continue;
      lt.end = std::max(lt.end, schedule.cycle(edge.dst) + schedule.ii() * edge.distance);
    }
    lifetimes.push_back(lt);
  }
  return lifetimes;
}

int register_requirement(const Loop& loop, const Ddg& graph, const LatencyModel& lat,
                         const Schedule& schedule) {
  const std::vector<RfLifetime> lifetimes = rf_lifetimes(loop, graph, lat, schedule);
  const int ii = schedule.ii();
  long long t0 = 0;
  for (const RfLifetime& lt : lifetimes) t0 = std::max<long long>(t0, lt.end);
  int best = 0;
  for (int phase = 0; phase < ii; ++phase) {
    int live = 0;
    for (const RfLifetime& lt : lifetimes) {
      live += live_instances(lt.start, lt.end, ii, t0 + phase);
    }
    best = std::max(best, live);
  }
  return best;
}

}  // namespace qvliw
