// Lower bounds on the initiation interval.
//
// ResMII: most-used FU class (operation count over FU instances, summed
// machine-wide — a clustered machine is bounded as if monolithic; the
// partitioner's job is to approach this bound).
// RecMII: smallest II for which no dependence circuit requires
// sigma-progress faster than II per iteration (no positive cycle under
// weights latency - II*distance).
#pragma once

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"

namespace qvliw {

struct MiiInfo {
  bool feasible = false;  // false when some op class has no FU at all
  int res_mii = 0;
  int rec_mii = 0;
  int mii = 0;  // max(res_mii, rec_mii)
};

/// Resource-constrained MII; 0-feasible only if every used FU kind exists.
[[nodiscard]] MiiInfo compute_mii(const Loop& loop, const Ddg& graph, const MachineConfig& machine);

/// ResMII alone (ops per FU kind vs machine-wide instances).
[[nodiscard]] int res_mii(const Loop& loop, const MachineConfig& machine);

/// RecMII alone: binary search over II with positive-cycle detection.
[[nodiscard]] int rec_mii(const Ddg& graph);

/// MII bounds of unroll(loop, factor) computed on the *base* loop and DDG,
/// without materialising the unrolled loop:
///   - ResMII scales analytically (factor*ops per FU class, ceil-divided
///     by machine-wide instances);
///   - RecMII is the smallest II admitting no positive cycle in the base
///     graph under weights (factor*latency - II*distance), which equals
///     RecMII of the replica-lifted (unrolled) DDG exactly — see
///     has_positive_cycle_scaled.
/// `rec_floor` (>= 1) is an optional known lower bound on the answer's
/// RecMII component (RecMII is nondecreasing in the factor, so the
/// previous factor's value is a valid floor for an incremental sweep).
/// Exact versus compute_mii on the materialised unrolled loop whenever the
/// unrolled DDG is the replica lift of `graph`; unroll_probe_is_exact
/// (xform/unroll.h) decides that precondition.
[[nodiscard]] MiiInfo unrolled_mii(const Loop& loop, const Ddg& graph,
                                   const MachineConfig& machine, int factor, int rec_floor = 1);

}  // namespace qvliw
