#include "sched/reservation.h"

#include <bit>

#include "support/diagnostics.h"

namespace qvliw {

ReservationTable::ReservationTable(const MachineConfig& machine, int ii)
    : clusters_(machine.cluster_count()) {
  const auto cells = static_cast<std::size_t>(clusters_ * kNumFuKinds);
  counts_.resize(cells);
  full_.resize(cells);
  offsets_.resize(cells);
  for (int c = 0; c < clusters_; ++c) {
    for (int k = 0; k < kNumFuKinds; ++k) {
      const auto i = static_cast<std::size_t>(c * kNumFuKinds + k);
      counts_[i] = machine.fu_count(c, static_cast<FuKind>(k));
      check(counts_[i] <= 64, "ReservationTable: more than 64 FU instances of one kind");
      full_[i] = counts_[i] == 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << counts_[i]) - 1;
    }
  }
  reset(ii);
}

void ReservationTable::reset(int ii) {
  check(ii >= 1, "ReservationTable: ii must be >= 1");
  ii_ = ii;
  std::size_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    offsets_[i] = total;
    total += static_cast<std::size_t>(counts_[i]) * static_cast<std::size_t>(ii_);
  }
  slots_.assign(total, -1);
  busy_.assign(counts_.size() * static_cast<std::size_t>(ii_), 0);
  used_.assign(counts_.size(), 0);
}

std::size_t ReservationTable::cell(int cluster, FuKind kind) const {
  QVLIW_ASSERT(cluster >= 0 && cluster < clusters_, "MRT: cluster out of range");
  return static_cast<std::size_t>(cluster * kNumFuKinds) + static_cast<std::size_t>(kind);
}

std::size_t ReservationTable::base(int cluster, FuKind kind) const {
  return offsets_[cell(cluster, kind)];
}

int ReservationTable::slot_of(int cycle) const {
  QVLIW_ASSERT(cycle >= 0, "MRT: negative cycle");
  return cycle % ii_;
}

int ReservationTable::instances(int cluster, FuKind kind) const {
  return counts_[cell(cluster, kind)];
}

int ReservationTable::find_free(int cluster, FuKind kind, int cycle) const {
  const std::size_t i = cell(cluster, kind);
  const std::uint64_t free =
      full_[i] & ~busy_[i * static_cast<std::size_t>(ii_) + static_cast<std::size_t>(slot_of(cycle))];
  return free != 0 ? std::countr_zero(free) : -1;
}

std::uint64_t ReservationTable::busy_word(int cluster, FuKind kind, int cycle) const {
  const std::size_t i = cell(cluster, kind);
  return busy_[i * static_cast<std::size_t>(ii_) + static_cast<std::size_t>(slot_of(cycle))];
}

int ReservationTable::occupant(int cluster, FuKind kind, int fu, int cycle) const {
  QVLIW_ASSERT(fu >= 0 && fu < instances(cluster, kind), "MRT: fu out of range");
  return slots_[base(cluster, kind) + static_cast<std::size_t>(fu * ii_ + slot_of(cycle))];
}

void ReservationTable::place(int cluster, FuKind kind, int fu, int cycle, int op) {
  const std::size_t i = cell(cluster, kind);
  QVLIW_ASSERT(fu >= 0 && fu < counts_[i], "MRT: fu out of range");
  const int slot = slot_of(cycle);
  int& s = slots_[offsets_[i] + static_cast<std::size_t>(fu * ii_ + slot)];
  QVLIW_ASSERT(s < 0, "MRT: placing into an occupied slot");
  s = op;
  busy_[i * static_cast<std::size_t>(ii_) + static_cast<std::size_t>(slot)] |= std::uint64_t{1} << fu;
  ++used_[i];
}

void ReservationTable::remove(int cluster, FuKind kind, int fu, int cycle, int op) {
  const std::size_t i = cell(cluster, kind);
  QVLIW_ASSERT(fu >= 0 && fu < counts_[i], "MRT: fu out of range");
  const int slot = slot_of(cycle);
  int& s = slots_[offsets_[i] + static_cast<std::size_t>(fu * ii_ + slot)];
  QVLIW_ASSERT(s == op, "MRT: removing an op that is not booked here");
  s = -1;
  busy_[i * static_cast<std::size_t>(ii_) + static_cast<std::size_t>(slot)] &=
      ~(std::uint64_t{1} << fu);
  --used_[i];
}

int ReservationTable::used_slots(int cluster, FuKind kind) const {
  return used_[cell(cluster, kind)];
}

}  // namespace qvliw
