#include "sched/reservation.h"

#include "support/diagnostics.h"

namespace qvliw {

ReservationTable::ReservationTable(const MachineConfig& machine, int ii)
    : ii_(ii), clusters_(machine.cluster_count()) {
  check(ii >= 1, "ReservationTable: ii must be >= 1");
  counts_.resize(static_cast<std::size_t>(clusters_ * kNumFuKinds));
  offsets_.resize(static_cast<std::size_t>(clusters_ * kNumFuKinds));
  std::size_t total = 0;
  for (int c = 0; c < clusters_; ++c) {
    for (int k = 0; k < kNumFuKinds; ++k) {
      const std::size_t cell = static_cast<std::size_t>(c * kNumFuKinds + k);
      counts_[cell] = machine.fu_count(c, static_cast<FuKind>(k));
      offsets_[cell] = total;
      total += static_cast<std::size_t>(counts_[cell]) * static_cast<std::size_t>(ii_);
    }
  }
  slots_.assign(total, -1);
}

std::size_t ReservationTable::base(int cluster, FuKind kind) const {
  QVLIW_ASSERT(cluster >= 0 && cluster < clusters_, "MRT: cluster out of range");
  return offsets_[static_cast<std::size_t>(cluster * kNumFuKinds) +
                  static_cast<std::size_t>(kind)];
}

int ReservationTable::slot_of(int cycle) const {
  QVLIW_ASSERT(cycle >= 0, "MRT: negative cycle");
  return cycle % ii_;
}

int ReservationTable::instances(int cluster, FuKind kind) const {
  QVLIW_ASSERT(cluster >= 0 && cluster < clusters_, "MRT: cluster out of range");
  return counts_[static_cast<std::size_t>(cluster * kNumFuKinds) + static_cast<std::size_t>(kind)];
}

int ReservationTable::find_free(int cluster, FuKind kind, int cycle) const {
  const int n = instances(cluster, kind);
  const std::size_t b = base(cluster, kind);
  const int slot = slot_of(cycle);
  for (int fu = 0; fu < n; ++fu) {
    if (slots_[b + static_cast<std::size_t>(fu * ii_ + slot)] < 0) return fu;
  }
  return -1;
}

int ReservationTable::occupant(int cluster, FuKind kind, int fu, int cycle) const {
  QVLIW_ASSERT(fu >= 0 && fu < instances(cluster, kind), "MRT: fu out of range");
  return slots_[base(cluster, kind) + static_cast<std::size_t>(fu * ii_ + slot_of(cycle))];
}

void ReservationTable::place(int cluster, FuKind kind, int fu, int cycle, int op) {
  QVLIW_ASSERT(fu >= 0 && fu < instances(cluster, kind), "MRT: fu out of range");
  int& cell = slots_[base(cluster, kind) + static_cast<std::size_t>(fu * ii_ + slot_of(cycle))];
  QVLIW_ASSERT(cell < 0, "MRT: placing into an occupied slot");
  cell = op;
}

void ReservationTable::remove(int cluster, FuKind kind, int fu, int cycle, int op) {
  QVLIW_ASSERT(fu >= 0 && fu < instances(cluster, kind), "MRT: fu out of range");
  int& cell = slots_[base(cluster, kind) + static_cast<std::size_t>(fu * ii_ + slot_of(cycle))];
  QVLIW_ASSERT(cell == op, "MRT: removing an op that is not booked here");
  cell = -1;
}

int ReservationTable::used_slots(int cluster, FuKind kind) const {
  const int n = instances(cluster, kind);
  const std::size_t b = base(cluster, kind);
  int used = 0;
  for (int i = 0; i < n * ii_; ++i) {
    if (slots_[b + static_cast<std::size_t>(i)] >= 0) ++used;
  }
  return used;
}

}  // namespace qvliw
