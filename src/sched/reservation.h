// Modulo reservation table (MRT).
//
// Tracks which operation occupies each FU instance at each of the II
// modulo slots.  Fully pipelined FUs: one issue per instance per slot.
//
// Occupancy is mirrored in one bitmask word per (cluster, kind, slot):
// bit `fu` set iff that instance is busy.  find_free is a countr_zero of
// the complement instead of a linear probe, victim selection walks the
// set bits of the same word, and used_slots is a per-cell running
// counter.  reset(ii) rebinds to a new II reusing the allocated storage,
// so the II-ladder searcher never reconstructs the table.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.h"

namespace qvliw {

class ReservationTable {
 public:
  ReservationTable(const MachineConfig& machine, int ii);

  /// Rebinds the table to a new II with every slot free.  Reuses the
  /// existing storage (amortised growth across an ascending II ladder).
  void reset(int ii);

  [[nodiscard]] int ii() const { return ii_; }

  /// Index of a free instance of `kind` in `cluster` at modulo slot of
  /// `cycle`, or -1 when all are busy.
  [[nodiscard]] int find_free(int cluster, FuKind kind, int cycle) const;

  /// Occupant op of an instance at the slot of `cycle`, or -1.
  [[nodiscard]] int occupant(int cluster, FuKind kind, int fu, int cycle) const;

  /// Number of instances of `kind` in `cluster`.
  [[nodiscard]] int instances(int cluster, FuKind kind) const;

  /// Busy-instance bitmask of (cluster, kind) at the slot of `cycle`:
  /// bit `fu` set iff that instance is occupied.  Lets victim selection
  /// iterate occupants with countr_zero instead of probing each instance.
  [[nodiscard]] std::uint64_t busy_word(int cluster, FuKind kind, int cycle) const;

  /// Books `op` onto (cluster, kind, fu) at the slot of `cycle`.
  /// The slot must be free.
  void place(int cluster, FuKind kind, int fu, int cycle, int op);

  /// Releases the booking; the slot must currently hold `op`.
  void remove(int cluster, FuKind kind, int fu, int cycle, int op);

  /// Occupied slots of `kind` in `cluster` (pressure metric for heuristics).
  [[nodiscard]] int used_slots(int cluster, FuKind kind) const;

 private:
  [[nodiscard]] std::size_t cell(int cluster, FuKind kind) const;
  [[nodiscard]] std::size_t base(int cluster, FuKind kind) const;
  [[nodiscard]] int slot_of(int cycle) const;

  int ii_ = 1;
  int clusters_ = 0;
  // Per (cluster, kind): FU instance count, all-instances mask, offset
  // into slots_, and occupied-slot counter.
  std::vector<int> counts_;
  std::vector<std::uint64_t> full_;
  std::vector<std::size_t> offsets_;
  std::vector<int> used_;
  std::vector<int> slots_;           // [offset + fu*ii + slot] -> op or -1
  std::vector<std::uint64_t> busy_;  // [cell*ii + slot] -> busy-instance mask
};

}  // namespace qvliw
