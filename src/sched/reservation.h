// Modulo reservation table (MRT).
//
// Tracks which operation occupies each FU instance at each of the II
// modulo slots.  Fully pipelined FUs: one issue per instance per slot.
#pragma once

#include <vector>

#include "machine/machine.h"

namespace qvliw {

class ReservationTable {
 public:
  ReservationTable(const MachineConfig& machine, int ii);

  [[nodiscard]] int ii() const { return ii_; }

  /// Index of a free instance of `kind` in `cluster` at modulo slot of
  /// `cycle`, or -1 when all are busy.
  [[nodiscard]] int find_free(int cluster, FuKind kind, int cycle) const;

  /// Occupant op of an instance at the slot of `cycle`, or -1.
  [[nodiscard]] int occupant(int cluster, FuKind kind, int fu, int cycle) const;

  /// Number of instances of `kind` in `cluster`.
  [[nodiscard]] int instances(int cluster, FuKind kind) const;

  /// Books `op` onto (cluster, kind, fu) at the slot of `cycle`.
  /// The slot must be free.
  void place(int cluster, FuKind kind, int fu, int cycle, int op);

  /// Releases the booking; the slot must currently hold `op`.
  void remove(int cluster, FuKind kind, int fu, int cycle, int op);

  /// Occupied slots of `kind` in `cluster` (pressure metric for heuristics).
  [[nodiscard]] int used_slots(int cluster, FuKind kind) const;

 private:
  [[nodiscard]] std::size_t base(int cluster, FuKind kind) const;
  [[nodiscard]] int slot_of(int cycle) const;

  int ii_ = 1;
  int clusters_ = 0;
  // Per (cluster, kind): FU instance count and offset into slots_.
  std::vector<int> counts_;
  std::vector<std::size_t> offsets_;
  std::vector<int> slots_;  // [offset + fu*ii + slot] -> op or -1
};

}  // namespace qvliw
