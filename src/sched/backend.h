// Pluggable scheduler backends behind a process-wide registry.
//
// The back end of the pipeline (harness/stage.h) used to hard-code a
// switch over `SchedulerKind`; this header promotes each arm to a
// `SchedulerBackend` that names itself, declares how it interacts with
// the sweep runner's caches, and schedules a `ScheduleRequest`.  The
// enum survives as a thin registry lookup (`scheduler_backend`), so all
// existing option structs and benches keep working, while external
// schedulers — e.g. an SMT-based optimal scheduler in the style of
// Roorda's software pipeliner — plug into the same sweep and
// golden-equivalence harness by registering under a new name and being
// selected per point via `PipelineOptions::backend`.
//
// Two declarations replace ad-hoc special cases in the sweep runner:
//
//  - `consumes_cached_mii()`: whether precomputed MII bounds for the
//    request's loop may be injected via ImsOptions::known_mii (the moves
//    router reschedules rewritten loops internally, so bounds for the
//    pre-routing loop must not leak into it — previously the `wants_mii`
//    flag hard-coded in sweep_prefix_keys).
//  - `cache_key(heuristic, ims)`: the backend's contribution to any
//    cache slot holding one of its schedules.  It folds the backend's
//    identity plus every option that changes which schedules are
//    *reachable* — but not `budget_ratio`, the effort axis a warm-start
//    ladder deliberately spans.  Slots derived from different
//    contributions never alias (a regression test enforces this).
//
// Warm starts: a request may carry the accepted schedule of a
// neighbouring sweep point (same loop/DDG/machine, smaller budget) as a
// `WarmStartSeed`.  Backends that return true from
// `supports_warm_start()` forward it to IMS, which verifies the seed and
// uses it to cap the II ladder — never changing the final II relative to
// a cold run on an ascending-budget ladder, only skipping the search
// that would rediscover it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/partition.h"
#include "sched/ims.h"

namespace qvliw {

/// The built-in scheduling modes.  Kept for API compatibility: each value
/// is now only a name lookup into the backend registry (see
/// `scheduler_backend`), not a dispatch site.
enum class SchedulerKind {
  kSingleCluster,   // classic IMS, machine treated as one cluster
  kClustered,       // the paper's partitioned IMS (adjacent-only comm)
  kClusteredMoves,  // extension: multi-hop routing via move ops
};

/// The registry name of a built-in kind ("single-cluster", "clustered",
/// "clustered-moves").
[[nodiscard]] std::string_view scheduler_kind_name(SchedulerKind kind);

/// Everything one scheduling run consumes.  Non-owning: the caller keeps
/// loop/graph/machine (and the optional seed) alive for the call.
struct ScheduleRequest {
  const Loop* loop = nullptr;
  const Ddg* graph = nullptr;
  const MachineConfig* machine = nullptr;

  /// IMS knobs, including the II window and — for backends that consume
  /// cached bounds — the precomputed MII in `ims.known_mii`.
  ImsOptions ims;

  /// Cluster-choice heuristic (consulted by the partitioned backends).
  ClusterHeuristic heuristic = ClusterHeuristic::kAffinity;

  /// Optional warm start: a neighbouring point's accepted schedule.
  const WarmStartSeed* seed = nullptr;
};

/// What a backend hands back.  Backends that rewrite the loop on the way
/// (the moves router inserts relay ops) return the rewritten loop and its
/// DDG so the caller can adopt them; `rewrote` is false for backends that
/// schedule the request's loop as-is.
struct ScheduleOutcome {
  ImsResult ims;

  bool rewrote = false;
  Loop rewritten_loop;                         // valid when rewrote
  std::shared_ptr<const Ddg> rewritten_graph;  // valid when rewrote
  int moves_added = 0;
};

class SchedulerBackend {
 public:
  virtual ~SchedulerBackend() = default;

  /// Unique registry name (also the per-point label in bench reports).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Contribution to cache slots holding this backend's schedules (warm
  /// start chains today; persisted schedules tomorrow).  The base
  /// implementation hashes the name; backends fold in every option that
  /// changes their output schedule, EXCEPT the placement budget — that is
  /// the ladder axis warm starts traverse.
  [[nodiscard]] virtual std::uint64_t cache_key(ClusterHeuristic heuristic,
                                                const ImsOptions& ims) const;

  /// Whether ImsOptions::known_mii bounds computed for the request's loop
  /// may be injected (replaces the sweep runner's `wants_mii` flag).
  [[nodiscard]] virtual bool consumes_cached_mii() const { return true; }

  /// Whether the backend honours ScheduleRequest::seed.
  [[nodiscard]] virtual bool supports_warm_start() const { return true; }

  [[nodiscard]] virtual ScheduleOutcome schedule(const ScheduleRequest& request) const = 0;

 protected:
  /// Folds the outcome-relevant ImsOptions fields (II window and attempt
  /// cap; NOT budget_ratio or known_mii) into `key`.
  [[nodiscard]] static std::uint64_t fold_ims(std::uint64_t key, const ImsOptions& ims);
};

/// Process-wide backend registry.  Registration is append-only (backend
/// pointers stay valid for the life of the process) and thread-safe; the
/// three built-in backends are registered on first access.
class SchedulerRegistry {
 public:
  /// The process-wide instance, with built-ins already registered.
  [[nodiscard]] static SchedulerRegistry& instance();

  /// Registers `backend`; throws Error when the name is already taken.
  void add(std::unique_ptr<SchedulerBackend> backend);

  /// Backend by name; nullptr when unknown.
  [[nodiscard]] const SchedulerBackend* find(std::string_view name) const;

  /// Backend by name; throws Error listing the registered names when
  /// unknown (the diagnostic a mistyped PipelineOptions::backend gets).
  [[nodiscard]] const SchedulerBackend& require(std::string_view name) const;

  /// Registered names, in registration order (built-ins first).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  SchedulerRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SchedulerBackend>> backends_;
};

/// The thin enum lookup: registry backend of a built-in kind.
[[nodiscard]] const SchedulerBackend& scheduler_backend(SchedulerKind kind);

/// Resolution used by the pipeline: `override_name` when non-empty (null
/// when unknown — callers report the diagnostic via require), else the
/// built-in backend of `kind`.
[[nodiscard]] const SchedulerBackend* find_scheduler_backend(SchedulerKind kind,
                                                             std::string_view override_name);

}  // namespace qvliw
