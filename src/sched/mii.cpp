#include "sched/mii.h"

#include <algorithm>

#include "ir/graph_algos.h"
#include "support/diagnostics.h"

namespace qvliw {

int res_mii(const Loop& loop, const MachineConfig& machine) {
  std::array<int, kNumFuKinds> ops_per_kind{};
  for (const Op& op : loop.ops) {
    ops_per_kind[static_cast<std::size_t>(fu_for(op.opcode))] += 1;
  }
  int bound = 1;
  for (int k = 0; k < kNumFuKinds; ++k) {
    const int ops = ops_per_kind[static_cast<std::size_t>(k)];
    if (ops == 0) continue;
    const int fus = machine.total_fus(static_cast<FuKind>(k));
    if (fus == 0) return 0;  // infeasible marker
    bound = std::max(bound, (ops + fus - 1) / fus);
  }
  return bound;
}

int rec_mii(const Ddg& graph) {
  // Feasibility is monotone in II: raising II only lowers the weight of
  // distance-carrying edges.  An II equal to the total latency is always
  // feasible (any circuit has distance >= 1 in a valid DDG).
  int lo = 1;
  int hi = std::max(1, graph.total_latency());
  QVLIW_ASSERT(!has_positive_cycle(graph, hi), "DDG has a zero-distance cycle");
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (has_positive_cycle(graph, mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

MiiInfo unrolled_mii(const Loop& loop, const Ddg& graph, const MachineConfig& machine, int factor,
                     int rec_floor) {
  check(factor >= 1, "unrolled_mii: factor must be >= 1");
  check(rec_floor >= 1, "unrolled_mii: rec_floor must be >= 1");
  MiiInfo info;

  // ResMII: every FU-class count scales by the factor; feasibility (some
  // used class has no FU at all) is factor-independent.
  std::array<int, kNumFuKinds> ops_per_kind{};
  for (const Op& op : loop.ops) {
    ops_per_kind[static_cast<std::size_t>(fu_for(op.opcode))] += 1;
  }
  int res = 1;
  for (int k = 0; k < kNumFuKinds; ++k) {
    const int ops = ops_per_kind[static_cast<std::size_t>(k)] * factor;
    if (ops == 0) continue;
    const int fus = machine.total_fus(static_cast<FuKind>(k));
    if (fus == 0) {
      info.feasible = false;
      return info;
    }
    res = std::max(res, (ops + fus - 1) / fus);
  }
  info.res_mii = res;

  // RecMII of the lifted graph: binary search over II with scaled weights.
  // The unrolled total latency is factor * base total latency, so that is
  // a feasible upper bound exactly as in rec_mii.
  int lo = rec_floor;
  int hi = std::max(lo, factor * std::max(1, graph.total_latency()));
  QVLIW_ASSERT(!has_positive_cycle_scaled(graph, hi, factor), "DDG has a zero-distance cycle");
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (has_positive_cycle_scaled(graph, mid, factor)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  info.rec_mii = lo;
  info.mii = std::max(info.res_mii, info.rec_mii);
  info.feasible = true;
  return info;
}

MiiInfo compute_mii(const Loop& loop, const Ddg& graph, const MachineConfig& machine) {
  MiiInfo info;
  info.res_mii = res_mii(loop, machine);
  if (info.res_mii == 0) {
    info.feasible = false;
    return info;
  }
  info.rec_mii = rec_mii(graph);
  info.mii = std::max(info.res_mii, info.rec_mii);
  info.feasible = true;
  return info;
}

}  // namespace qvliw
