#include "sched/ims_reference.h"

#include <algorithm>
#include <limits>
#include <set>

#include "ir/graph_algos.h"
#include "sched/reservation.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

/// One II attempt of the iterative scheme, as originally written: fresh
/// state per attempt, a std::set<(−height, op)> ready queue, linear FU
/// probes through the reservation table.
class ReferenceAttempt {
 public:
  ReferenceAttempt(const Loop& loop, const Ddg& graph, const DdgFlat& flat,
                   const MachineConfig& machine, ClusterAssigner& assigner, int ii,
                   int budget_ratio, ImsStats& stats)
      : loop_(loop),
        flat_(flat),
        assigner_(assigner),
        ii_(ii),
        stats_(stats),
        height_(height_priority(graph, ii)),
        schedule_(graph.node_count(), ii),
        mrt_(machine, ii),
        prev_cycle_(static_cast<std::size_t>(graph.node_count()), -1),
        budget_(static_cast<long long>(budget_ratio) * graph.node_count()) {
    assigner_.reset(ii);
    for (int op = 0; op < flat_.node_count; ++op) ready_.insert(key(op));
  }

  bool run() {
    while (!ready_.empty()) {
      if (budget_-- <= 0) return false;
      const int op = ready_.begin()->second;
      ready_.erase(ready_.begin());
      schedule_one(op);
    }
    return true;
  }

  [[nodiscard]] Schedule take_schedule() { return std::move(schedule_); }

 private:
  [[nodiscard]] std::pair<int, int> key(int op) const {
    return {-height_[static_cast<std::size_t>(op)], op};
  }

  [[nodiscard]] FuKind kind_of(int op) const {
    return fu_for(loop_.ops[static_cast<std::size_t>(op)].opcode);
  }

  [[nodiscard]] int earliest_start(int op) const {
    int estart = 0;
    for (const std::int32_t e : flat_.in(op)) {
      const int src = flat_.src[static_cast<std::size_t>(e)];
      if (src == op) continue;
      if (!schedule_.scheduled(src)) continue;
      estart = std::max(estart, schedule_.cycle(src) + flat_.latency[static_cast<std::size_t>(e)] -
                                    ii_ * flat_.distance[static_cast<std::size_t>(e)]);
    }
    return estart;
  }

  void displace(int op) {
    if (!schedule_.scheduled(op)) return;
    const Placement p = schedule_.place(op);
    mrt_.remove(p.cluster, kind_of(op), p.fu, p.cycle, op);
    schedule_.clear(op);
    assigner_.on_remove(op);
    ready_.insert(key(op));
    ++stats_.evictions;
  }

  [[nodiscard]] int victim_fu(int cluster, FuKind kind, int cycle) const {
    const int n = mrt_.instances(cluster, kind);
    QVLIW_ASSERT(n > 0, "forced placement on a cluster without this FU kind");
    int best = 0;
    int best_height = std::numeric_limits<int>::max();
    for (int fu = 0; fu < n; ++fu) {
      const int occ = mrt_.occupant(cluster, kind, fu, cycle);
      QVLIW_ASSERT(occ >= 0, "victim_fu called with a free instance available");
      if (height_[static_cast<std::size_t>(occ)] < best_height) {
        best_height = height_[static_cast<std::size_t>(occ)];
        best = fu;
      }
    }
    return best;
  }

  void schedule_one(int op) {
    const FuKind kind = kind_of(op);
    const int estart = earliest_start(op);
    assigner_.candidates(op, candidates_);
    QVLIW_ASSERT(!candidates_.empty(), "ClusterAssigner returned no candidates");

    int chosen_cycle = -1;
    int chosen_cluster = -1;
    int chosen_fu = -1;
    for (int t = estart; t < estart + ii_ && chosen_cycle < 0; ++t) {
      for (int c : candidates_) {
        if (!assigner_.legal(op, c)) continue;
        const int fu = mrt_.find_free(c, kind, t);
        if (fu >= 0) {
          chosen_cycle = t;
          chosen_cluster = c;
          chosen_fu = fu;
          break;
        }
      }
    }

    if (chosen_cycle < 0) {
      const int prev = prev_cycle_[static_cast<std::size_t>(op)];
      chosen_cycle = (prev < 0 || estart > prev) ? estart : prev + 1;
      chosen_cluster = -1;
      for (int c : candidates_) {
        if (assigner_.legal(op, c)) {
          chosen_cluster = c;
          break;
        }
      }
      if (chosen_cluster < 0) chosen_cluster = candidates_.front();
      chosen_fu = mrt_.find_free(chosen_cluster, kind, chosen_cycle);
      if (chosen_fu < 0) {
        chosen_fu = victim_fu(chosen_cluster, kind, chosen_cycle);
        displace(mrt_.occupant(chosen_cluster, kind, chosen_fu, chosen_cycle));
      }
    }

    mrt_.place(chosen_cluster, kind, chosen_fu, chosen_cycle, op);
    schedule_.set(op, Placement{chosen_cycle, chosen_cluster, chosen_fu});
    assigner_.on_place(op, chosen_cluster);
    prev_cycle_[static_cast<std::size_t>(op)] = chosen_cycle;
    ++stats_.placements;

    evictions_.clear();
    for (const std::int32_t e : flat_.out(op)) {
      const std::size_t i = static_cast<std::size_t>(e);
      const int dst = flat_.dst[i];
      if (dst == op || !schedule_.scheduled(dst)) continue;
      if (schedule_.cycle(dst) < chosen_cycle + flat_.latency[i] - ii_ * flat_.distance[i]) {
        evictions_.push_back(dst);
      }
    }
    for (const std::int32_t e : flat_.in(op)) {
      const std::size_t i = static_cast<std::size_t>(e);
      const int src = flat_.src[i];
      if (src == op || !schedule_.scheduled(src)) continue;
      if (chosen_cycle < schedule_.cycle(src) + flat_.latency[i] - ii_ * flat_.distance[i]) {
        evictions_.push_back(src);
      }
    }
    assigner_.adjacency_evictions(op, chosen_cluster, adjacency_evictions_);
    evictions_.insert(evictions_.end(), adjacency_evictions_.begin(), adjacency_evictions_.end());
    for (int v : evictions_) displace(v);
  }

  const Loop& loop_;
  const DdgFlat& flat_;
  ClusterAssigner& assigner_;
  const int ii_;
  ImsStats& stats_;
  std::vector<int> height_;
  Schedule schedule_;
  ReservationTable mrt_;
  std::vector<int> prev_cycle_;
  long long budget_;
  std::set<std::pair<int, int>> ready_;
  std::vector<int> candidates_;
  std::vector<int> evictions_;
  std::vector<int> adjacency_evictions_;
};

}  // namespace

ImsResult ims_schedule_reference(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                                 const ImsOptions& options, ClusterAssigner* assigner) {
  check(loop.op_count() == graph.node_count(), "ims_schedule_reference: loop/DDG mismatch");
  machine.validate();

  SingleClusterAssigner single;
  ClusterAssigner& strategy = assigner != nullptr ? *assigner : single;

  ImsResult result;
  result.mii = options.known_mii.feasible ? options.known_mii
                                          : compute_mii(loop, graph, machine);
  if (!result.mii.feasible) {
    result.failure = "machine lacks an FU class required by the loop";
    return result;
  }

  const int first_ii = std::max(result.mii.mii, options.start_ii);
  int last_ii = options.max_ii;
  if (options.ii_limit >= 0) last_ii = std::min(last_ii, options.ii_limit);
  if (first_ii > last_ii) {
    result.failure = cat("II limit ", last_ii, " below MII ", result.mii.mii);
    return result;
  }

  const DdgFlat flat = DdgFlat::from(graph);

  for (int ii = first_ii; ii <= last_ii; ++ii) {
    if (result.stats.ii_attempts >= options.max_ii_attempts) break;
    ++result.stats.ii_attempts;
    ReferenceAttempt attempt(loop, graph, flat, machine, strategy, ii, options.budget_ratio,
                             result.stats);
    if (!attempt.run()) continue;
    result.schedule = attempt.take_schedule();
    result.ii = ii;
    result.ok = true;

    const auto errors = verify_schedule(loop, graph, machine, result.schedule);
    QVLIW_ASSERT(errors.empty(), cat("reference IMS produced an illegal schedule: ", errors.front()));
    return result;
  }

  result.failure = cat("no schedule found up to II=", last_ii);
  return result;
}

}  // namespace qvliw
