// Modulo schedule representation and validation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"

namespace qvliw {

/// Where and when one operation issues (cycle within the flat one-iteration
/// schedule; the instance of iteration j issues at cycle + j*II).
struct Placement {
  int cycle = -1;
  int cluster = 0;
  int fu = 0;  // instance index within its FU kind

  friend bool operator==(const Placement&, const Placement&) = default;
};

class Schedule {
 public:
  Schedule() = default;
  Schedule(int op_count, int ii);

  /// Rebinds to a new (op_count, ii) with every op unscheduled — same
  /// post-state as constructing afresh, but reusing the placement storage
  /// so the II-ladder searcher pays no allocation between attempts.
  void reset(int op_count, int ii);

  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] int op_count() const { return static_cast<int>(places_.size()); }

  [[nodiscard]] bool scheduled(int op) const;
  [[nodiscard]] const Placement& place(int op) const;
  [[nodiscard]] int cycle(int op) const { return place(op).cycle; }
  [[nodiscard]] int cluster(int op) const { return place(op).cluster; }

  void set(int op, Placement placement);
  void clear(int op);

  /// True when every op is placed.
  [[nodiscard]] bool complete() const;

  /// Largest issue cycle over scheduled ops (-1 when none).
  [[nodiscard]] int max_cycle() const;

  /// floor(max_cycle / II) + 1 — the paper's stage count (SC).
  [[nodiscard]] int stage_count() const;

  /// Completion time of a `trip`-iteration run under this schedule:
  /// (trip-1)*II + max over ops of (cycle + latency). Matches the
  /// cycle-accurate simulator.
  [[nodiscard]] long long total_cycles(const Loop& loop, const LatencyModel& lat,
                                       long long trip) const;

 private:
  int ii_ = 1;
  std::vector<std::optional<Placement>> places_;
};

/// Full verification of a candidate schedule: op-count agreement with the
/// loop/DDG, every dependence constraint, and every resource constraint.
/// Empty == the schedule is valid for this (loop, graph, machine).  Used
/// to vet warm-start seeds before the scheduler adopts them, and by tests.
/// A thin wrapper over the independent verifier's schedule-legality pass
/// (verify_modulo_schedule in verify/verify.h), which is the single
/// implementation of these rules.
[[nodiscard]] std::vector<std::string> verify_schedule(const Loop& loop, const Ddg& graph,
                                                       const MachineConfig& machine,
                                                       const Schedule& schedule);

/// Operations per source iteration that the paper counts for IPC
/// (copies and moves are plumbing, not issued work of the source program).
[[nodiscard]] int useful_op_count(const Loop& loop);

/// Static issue rate: useful ops per kernel cycle.
[[nodiscard]] double static_ipc(const Loop& loop, const Schedule& schedule);

/// Dynamic issue rate over `trip` kernel iterations including prologue and
/// epilogue occupancy (the paper's IPC_dynamic).
[[nodiscard]] double dynamic_ipc(const Loop& loop, const LatencyModel& lat,
                                 const Schedule& schedule, long long trip);

/// Renders a kernel picture: one line per modulo slot, one column per FU.
[[nodiscard]] std::string format_kernel(const Loop& loop, const MachineConfig& machine,
                                        const Schedule& schedule);

class BlobReader;
class BlobWriter;

/// Serialises `schedule` into the portable blob format
/// (support/artifact_store.h): II, op count, and per-op placements.  Used
/// by the sweep runner to persist accepted warm-start schedules in the
/// artifact store so budget ladders warm across processes.
void serialize_schedule(BlobWriter& out, const Schedule& schedule);

/// Inverse of serialize_schedule; throws Error on truncation or a
/// structurally invalid placement (negative cycle, II < 1).  The result is
/// *not* verified against any loop/machine — run verify_schedule before
/// trusting a deserialised schedule (warm-start seeding does exactly
/// that, so a stale or foreign store entry can only ever be ignored).
[[nodiscard]] Schedule deserialize_schedule(BlobReader& in);

}  // namespace qvliw
