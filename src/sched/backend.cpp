#include "sched/backend.h"

#include <utility>

#include "cluster/route.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qvliw {

std::string_view scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSingleCluster:
      return "single-cluster";
    case SchedulerKind::kClustered:
      return "clustered";
    case SchedulerKind::kClusteredMoves:
      return "clustered-moves";
  }
  QVLIW_ASSERT(false, "bad SchedulerKind");
}

std::uint64_t SchedulerBackend::cache_key(ClusterHeuristic, const ImsOptions&) const {
  return hash_bytes(name());
}

std::uint64_t SchedulerBackend::fold_ims(std::uint64_t key, const ImsOptions& ims) {
  key = hash_combine(key, hash64(static_cast<std::uint64_t>(ims.start_ii)));
  key = hash_combine(key, hash64(static_cast<std::uint64_t>(ims.max_ii)));
  key = hash_combine(key, hash64(static_cast<std::uint64_t>(ims.max_ii_attempts)));
  return hash_combine(key, hash64(static_cast<std::uint64_t>(ims.ii_limit + 1)));
}

namespace {

class SingleClusterBackend final : public SchedulerBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "single-cluster"; }

  [[nodiscard]] std::uint64_t cache_key(ClusterHeuristic, const ImsOptions& ims) const override {
    // The heuristic steers cluster choice only; a one-cluster schedule is
    // independent of it, so points differing only there share slots.
    return fold_ims(hash_bytes(name()), ims);
  }

  [[nodiscard]] ScheduleOutcome schedule(const ScheduleRequest& request) const override {
    ScheduleOutcome outcome;
    outcome.ims =
        ims_schedule(*request.loop, *request.graph, *request.machine, request.ims,
                     /*assigner=*/nullptr, request.seed);
    return outcome;
  }
};

class ClusteredBackend final : public SchedulerBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "clustered"; }

  [[nodiscard]] std::uint64_t cache_key(ClusterHeuristic heuristic,
                                        const ImsOptions& ims) const override {
    return fold_ims(hash_combine(hash_bytes(name()),
                                 hash64(static_cast<std::uint64_t>(heuristic))),
                    ims);
  }

  [[nodiscard]] ScheduleOutcome schedule(const ScheduleRequest& request) const override {
    PartitionOptions options;
    options.heuristic = request.heuristic;
    options.ims = request.ims;
    ScheduleOutcome outcome;
    outcome.ims = partition_schedule(*request.loop, *request.graph, *request.machine, options,
                                     request.seed);
    return outcome;
  }
};

class ClusteredMovesBackend final : public SchedulerBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "clustered-moves"; }

  [[nodiscard]] std::uint64_t cache_key(ClusterHeuristic heuristic,
                                        const ImsOptions& ims) const override {
    return fold_ims(hash_combine(hash_bytes(name()),
                                 hash64(static_cast<std::uint64_t>(heuristic))),
                    ims);
  }

  /// The router reschedules rewritten loops internally; cached MII bounds
  /// for the pre-routing loop must not leak into those runs.
  [[nodiscard]] bool consumes_cached_mii() const override { return false; }

  /// Moves change the loop itself, so a neighbouring point's schedule
  /// does not transfer.
  [[nodiscard]] bool supports_warm_start() const override { return false; }

  [[nodiscard]] ScheduleOutcome schedule(const ScheduleRequest& request) const override {
    PartitionOptions options;
    options.heuristic = request.heuristic;
    options.ims = request.ims;
    ScheduleOutcome outcome;
    RouteResult routed = partition_with_moves(*request.loop, *request.machine, options);
    if (!routed.ok) {
      outcome.ims.failure = std::move(routed.failure);
      return outcome;
    }
    outcome.ims = std::move(routed.ims);
    outcome.rewrote = true;
    outcome.moves_added = routed.moves_added;
    outcome.rewritten_graph =
        std::make_shared<const Ddg>(Ddg::build(routed.loop, request.machine->latency));
    outcome.rewritten_loop = std::move(routed.loop);
    return outcome;
  }
};

}  // namespace

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    r->add(std::make_unique<SingleClusterBackend>());
    r->add(std::make_unique<ClusteredBackend>());
    r->add(std::make_unique<ClusteredMovesBackend>());
    return r;
  }();
  return *registry;
}

void SchedulerRegistry::add(std::unique_ptr<SchedulerBackend> backend) {
  check(backend != nullptr, "SchedulerRegistry: null backend");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<SchedulerBackend>& existing : backends_) {
    check(existing->name() != backend->name(),
          cat("SchedulerRegistry: backend '", backend->name(), "' already registered"));
  }
  backends_.push_back(std::move(backend));
}

const SchedulerBackend* SchedulerRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<SchedulerBackend>& backend : backends_) {
    if (backend->name() == name) return backend.get();
  }
  return nullptr;
}

const SchedulerBackend& SchedulerRegistry::require(std::string_view name) const {
  const SchedulerBackend* backend = find(name);
  if (backend == nullptr) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw Error(cat("unknown scheduler backend '", name, "' (registered: ", known, ")"));
  }
  return *backend;
}

std::vector<std::string> SchedulerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const std::unique_ptr<SchedulerBackend>& backend : backends_) {
    out.emplace_back(backend->name());
  }
  return out;
}

const SchedulerBackend& scheduler_backend(SchedulerKind kind) {
  return SchedulerRegistry::instance().require(scheduler_kind_name(kind));
}

const SchedulerBackend* find_scheduler_backend(SchedulerKind kind,
                                               std::string_view override_name) {
  if (!override_name.empty()) return SchedulerRegistry::instance().find(override_name);
  return &scheduler_backend(kind);
}

}  // namespace qvliw
