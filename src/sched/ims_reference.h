// Frozen reference IMS — the pre-arena, std::set-based implementation.
//
// This is the behavioral oracle for the allocation-free ImsSearcher in
// ims.cpp: same algorithm, same (-height, op) pop order, same forced
// placement and eviction rules, written the straightforward way (a
// red-black-tree ready queue, per-attempt allocation, linear FU probes).
// The golden-equivalence suite (tests/test_ims_golden.cpp) and the
// bench_ims gate require ims_schedule to produce bit-identical schedules
// and identical search statistics to this function over the whole
// workload suite.  Do not "optimise" this file; its slowness is the
// point of comparison.
#pragma once

#include "sched/ims.h"

namespace qvliw {

/// Cold (seedless) reference search.  Equivalent to ims_schedule with the
/// same options and assigner, minus warm-start installs and the new
/// search telemetry (only placements/evictions/ii_attempts are filled).
[[nodiscard]] ImsResult ims_schedule_reference(const Loop& loop, const Ddg& graph,
                                               const MachineConfig& machine,
                                               const ImsOptions& options = {},
                                               ClusterAssigner* assigner = nullptr);

}  // namespace qvliw
