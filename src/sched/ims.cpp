#include "sched/ims.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

#include "ir/graph_algos.h"
#include "sched/reservation.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

/// Allocation-free II-ladder search core.  Every piece of attempt state —
/// heights, schedule, MRT, prev-cycle memory, the ready structure, and the
/// eviction scratch — is allocated once per ims_schedule call and reset in
/// place between II attempts.
///
/// The ready "queue" exploits that heights are fixed for the duration of
/// one II attempt: ops are counting-sorted once into `order_` by the exact
/// set key of the original implementation, (-height, op) ascending, and
/// readiness becomes a bitmask over those ranks.  Popping the minimum
/// present rank (countr_zero from a monotone cursor word) therefore
/// reproduces the std::set pop order bit-for-bit, and re-inserting a
/// displaced op is a single bit set.
class ImsSearcher {
 public:
  ImsSearcher(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
              ClusterAssigner& assigner)
      : flat_(DdgFlat::from(graph)),
        assigner_(assigner),
        n_(flat_.node_count),
        mrt_(machine, 1),
        schedule_(flat_.node_count, 1) {
    kind_of_.reserve(static_cast<std::size_t>(n_));
    for (int op = 0; op < n_; ++op) {
      kind_of_.push_back(fu_for(loop.ops[static_cast<std::size_t>(op)].opcode));
    }
    prev_cycle_.resize(static_cast<std::size_t>(n_));
    order_.resize(static_cast<std::size_t>(n_));
    rank_of_.resize(static_cast<std::size_t>(n_));
    words_.resize(static_cast<std::size_t>(n_ + 63) / 64);
  }

  /// One II attempt; true iff a complete schedule was built within budget.
  bool attempt(int ii, int budget_ratio, ImsStats& stats) {
    ii_ = ii;
    stats_ = &stats;
    height_priority(flat_, ii, height_);
    schedule_.reset(n_, ii);
    mrt_.reset(ii);
    std::fill(prev_cycle_.begin(), prev_cycle_.end(), -1);
    assigner_.reset(ii);
    build_rank_order();
    ready_all();

    long long budget = static_cast<long long>(budget_ratio) * n_;
    int spent = 0;
    while (ready_count_ > 0) {
      if (budget-- <= 0) {
        stats.budget_spent = spent;
        return false;
      }
      schedule_one(pop_ready());
      ++spent;
    }
    stats.budget_spent = spent;
    return true;
  }

  [[nodiscard]] Schedule take_schedule() { return std::move(schedule_); }

 private:
  [[nodiscard]] FuKind kind_of(int op) const { return kind_of_[static_cast<std::size_t>(op)]; }

  /// Counting sort of all ops by (-height, op) ascending into order_;
  /// rank_of_ is the inverse permutation.
  void build_rank_order() {
    int max_h = 0;
    for (int op = 0; op < n_; ++op) max_h = std::max(max_h, height_[static_cast<std::size_t>(op)]);
    bucket_.assign(static_cast<std::size_t>(max_h) + 1, 0);
    for (int op = 0; op < n_; ++op) ++bucket_[static_cast<std::size_t>(height_[static_cast<std::size_t>(op)])];
    int off = 0;
    for (int h = max_h; h >= 0; --h) {
      const int count = bucket_[static_cast<std::size_t>(h)];
      bucket_[static_cast<std::size_t>(h)] = off;
      off += count;
    }
    for (int op = 0; op < n_; ++op) {
      const int r = bucket_[static_cast<std::size_t>(height_[static_cast<std::size_t>(op)])]++;
      order_[static_cast<std::size_t>(r)] = op;
      rank_of_[static_cast<std::size_t>(op)] = r;
    }
  }

  void ready_all() {
    std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
    if (n_ % 64 != 0 && !words_.empty()) {
      words_.back() = (std::uint64_t{1} << (n_ % 64)) - 1;
    }
    cursor_ = 0;
    ready_count_ = n_;
  }

  int pop_ready() {
    std::size_t w = cursor_;
    while (words_[w] == 0) ++w;
    cursor_ = w;
    const int bit = std::countr_zero(words_[w]);
    words_[w] &= words_[w] - 1;
    --ready_count_;
    return order_[w * 64 + static_cast<std::size_t>(bit)];
  }

  void push_ready(int op) {
    const int r = rank_of_[static_cast<std::size_t>(op)];
    const std::size_t w = static_cast<std::size_t>(r) / 64;
    words_[w] |= std::uint64_t{1} << (r % 64);
    if (w < cursor_) cursor_ = w;
    ++ready_count_;
  }

  /// Earliest start from currently scheduled predecessors.
  [[nodiscard]] int earliest_start(int op) const {
    int estart = 0;
    for (const std::int32_t e : flat_.in(op)) {
      const int src = flat_.src[static_cast<std::size_t>(e)];
      if (src == op) continue;  // self-dependence never binds (lat <= ii*dist at ii >= RecMII)
      if (!schedule_.scheduled(src)) continue;
      estart = std::max(estart, schedule_.cycle(src) + flat_.latency[static_cast<std::size_t>(e)] -
                                    ii_ * flat_.distance[static_cast<std::size_t>(e)]);
    }
    return estart;
  }

  void displace(int op) {
    if (!schedule_.scheduled(op)) return;
    const Placement p = schedule_.place(op);
    mrt_.remove(p.cluster, kind_of(op), p.fu, p.cycle, op);
    schedule_.clear(op);
    assigner_.on_remove(op);
    push_ready(op);
    ++stats_->evictions;
  }

  /// Instance whose occupant has the lowest height (cheapest to displace).
  /// Walks the set bits of the MRT's busy word; called only when every
  /// instance is occupied, so the word enumerates all of them.
  [[nodiscard]] int victim_fu(int cluster, FuKind kind, int cycle) const {
    std::uint64_t busy = mrt_.busy_word(cluster, kind, cycle);
    QVLIW_ASSERT(busy != 0, "forced placement on a cluster without this FU kind");
    int best = 0;
    int best_height = std::numeric_limits<int>::max();
    for (; busy != 0; busy &= busy - 1) {
      const int fu = std::countr_zero(busy);
      const int occ = mrt_.occupant(cluster, kind, fu, cycle);
      if (height_[static_cast<std::size_t>(occ)] < best_height) {
        best_height = height_[static_cast<std::size_t>(occ)];
        best = fu;
      }
    }
    return best;
  }

  void schedule_one(int op) {
    const FuKind kind = kind_of(op);
    const int estart = earliest_start(op);
    assigner_.candidates(op, candidates_);
    QVLIW_ASSERT(!candidates_.empty(), "ClusterAssigner returned no candidates");

    int chosen_cycle = -1;
    int chosen_cluster = -1;
    int chosen_fu = -1;
    for (int t = estart; t < estart + ii_ && chosen_cycle < 0; ++t) {
      for (int c : candidates_) {
        if (!assigner_.legal(op, c)) continue;
        const int fu = mrt_.find_free(c, kind, t);
        if (fu >= 0) {
          chosen_cycle = t;
          chosen_cluster = c;
          chosen_fu = fu;
          break;
        }
      }
    }

    if (chosen_cycle < 0) {
      // Forced placement (Rau): at Estart the first time through, one past
      // the previous placement when re-scheduling at the same spot.
      ++stats_->forced;
      const int prev = prev_cycle_[static_cast<std::size_t>(op)];
      chosen_cycle = (prev < 0 || estart > prev) ? estart : prev + 1;
      chosen_cluster = -1;
      for (int c : candidates_) {
        if (assigner_.legal(op, c)) {
          chosen_cluster = c;
          break;
        }
      }
      if (chosen_cluster < 0) chosen_cluster = candidates_.front();
      chosen_fu = mrt_.find_free(chosen_cluster, kind, chosen_cycle);
      if (chosen_fu < 0) {
        chosen_fu = victim_fu(chosen_cluster, kind, chosen_cycle);
        displace(mrt_.occupant(chosen_cluster, kind, chosen_fu, chosen_cycle));
      }
    }

    mrt_.place(chosen_cluster, kind, chosen_fu, chosen_cycle, op);
    schedule_.set(op, Placement{chosen_cycle, chosen_cluster, chosen_fu});
    assigner_.on_place(op, chosen_cluster);
    prev_cycle_[static_cast<std::size_t>(op)] = chosen_cycle;
    ++stats_->placements;

    // Displace scheduled neighbours whose dependence constraints broke.
    evictions_.clear();
    for (const std::int32_t e : flat_.out(op)) {
      const std::size_t i = static_cast<std::size_t>(e);
      const int dst = flat_.dst[i];
      if (dst == op || !schedule_.scheduled(dst)) continue;
      if (schedule_.cycle(dst) < chosen_cycle + flat_.latency[i] - ii_ * flat_.distance[i]) {
        evictions_.push_back(dst);
      }
    }
    for (const std::int32_t e : flat_.in(op)) {
      const std::size_t i = static_cast<std::size_t>(e);
      const int src = flat_.src[i];
      if (src == op || !schedule_.scheduled(src)) continue;
      if (chosen_cycle < schedule_.cycle(src) + flat_.latency[i] - ii_ * flat_.distance[i]) {
        evictions_.push_back(src);
      }
    }
    // And neighbours whose value paths are no longer cluster-reachable.
    assigner_.adjacency_evictions(op, chosen_cluster, adjacency_evictions_);
    evictions_.insert(evictions_.end(), adjacency_evictions_.begin(), adjacency_evictions_.end());
    for (int v : evictions_) displace(v);
  }

  const DdgFlat flat_;
  ClusterAssigner& assigner_;
  const int n_;
  int ii_ = 1;
  ImsStats* stats_ = nullptr;
  ReservationTable mrt_;
  Schedule schedule_;
  std::vector<FuKind> kind_of_;
  std::vector<int> height_;
  std::vector<int> prev_cycle_;
  std::vector<int> bucket_;   // counting-sort scratch, indexed by height
  std::vector<int> order_;    // rank -> op, sorted by (-height, op)
  std::vector<int> rank_of_;  // op -> rank
  std::vector<std::uint64_t> words_;  // readiness bitmask over ranks
  std::size_t cursor_ = 0;            // lowest word that may contain a set bit
  int ready_count_ = 0;
  std::vector<int> candidates_;
  std::vector<int> evictions_;
  std::vector<int> adjacency_evictions_;
};

}  // namespace

ImsResult ims_schedule(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                       const ImsOptions& options, ClusterAssigner* assigner,
                       const WarmStartSeed* seed) {
  check(loop.op_count() == graph.node_count(), "ims_schedule: loop/DDG mismatch");
  machine.validate();

  SingleClusterAssigner single;
  ClusterAssigner& strategy = assigner != nullptr ? *assigner : single;

  ImsResult result;
  result.mii = options.known_mii.feasible ? options.known_mii
                                          : compute_mii(loop, graph, machine);
  if (!result.mii.feasible) {
    result.failure = "machine lacks an FU class required by the loop";
    return result;
  }

  const int first_ii = std::max(result.mii.mii, options.start_ii);
  int last_ii = options.max_ii;
  if (options.ii_limit >= 0) last_ii = std::min(last_ii, options.ii_limit);
  if (first_ii > last_ii) {
    result.failure = cat("II limit ", last_ii, " below MII ", result.mii.mii);
    return result;
  }

  // A seed is usable only when it falls inside this run's II window, its
  // schedule matches the seed II, and it verifies clean for exactly this
  // (loop, graph, machine).  Anything else is ignored — warm starting may
  // only ever remove work, never change what is schedulable.
  const bool seed_usable = seed != nullptr && seed->ii >= first_ii && seed->ii <= last_ii &&
                           seed->schedule.ii() == seed->ii &&
                           verify_schedule(loop, graph, machine, seed->schedule).empty();

  // One searcher arena (flat DDG mirror, MRT, schedule, ready structure,
  // scratch) serves every II attempt of this call.
  ImsSearcher searcher(loop, graph, machine, strategy);

  for (int ii = first_ii; ii <= last_ii; ++ii) {
    if (result.stats.ii_attempts >= options.max_ii_attempts) {
      // Stopping on the attempt cap is not the same failure as running
      // off the II ladder: the ladder may have had room left.
      result.failure = cat("no schedule found within ", options.max_ii_attempts,
                           " II attempts (stopped at II=", ii - 1, ", ladder cap II=", last_ii,
                           ")");
      return result;
    }
    ++result.stats.ii_attempts;
    if (seed_usable && ii == seed->ii) {
      // The ladder reached the seed's II without finding anything better:
      // the already-verified seed schedule is an accepted answer, so the
      // budgeted search at this II is pure rediscovery — skip it.
      result.schedule = seed->schedule;
      result.ii = ii;
      result.ok = true;
      result.warm_started = true;
      result.stats.mii_optimal = ii == result.mii.mii;
      return result;
    }
    if (!searcher.attempt(ii, options.budget_ratio, result.stats)) continue;
    result.schedule = searcher.take_schedule();
    result.ii = ii;
    result.ok = true;
    result.stats.mii_optimal = ii == result.mii.mii;

    const auto errors = verify_schedule(loop, graph, machine, result.schedule);
    QVLIW_ASSERT(errors.empty(), cat("IMS produced an illegal schedule: ", errors.front()));
    return result;
  }

  result.failure = cat("no schedule found up to II=", last_ii);
  return result;
}

}  // namespace qvliw
