#include "sched/schedule.h"

#include <algorithm>
#include <sstream>

#include "ir/printer.h"
#include "machine/fu.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "verify/verify.h"

namespace qvliw {

Schedule::Schedule(int op_count, int ii) : ii_(ii), places_(static_cast<std::size_t>(op_count)) {
  check(op_count >= 0, "Schedule: negative op count");
  check(ii >= 1, "Schedule: ii must be >= 1");
}

void Schedule::reset(int op_count, int ii) {
  check(op_count >= 0, "Schedule: negative op count");
  check(ii >= 1, "Schedule: ii must be >= 1");
  ii_ = ii;
  places_.assign(static_cast<std::size_t>(op_count), std::nullopt);
}

bool Schedule::scheduled(int op) const {
  check(op >= 0 && op < op_count(), "Schedule: op out of range");
  return places_[static_cast<std::size_t>(op)].has_value();
}

const Placement& Schedule::place(int op) const {
  check(scheduled(op), "Schedule: op not scheduled");
  return *places_[static_cast<std::size_t>(op)];
}

void Schedule::set(int op, Placement placement) {
  check(op >= 0 && op < op_count(), "Schedule: op out of range");
  check(placement.cycle >= 0, "Schedule: negative cycle");
  places_[static_cast<std::size_t>(op)] = placement;
}

void Schedule::clear(int op) {
  check(op >= 0 && op < op_count(), "Schedule: op out of range");
  places_[static_cast<std::size_t>(op)].reset();
}

bool Schedule::complete() const {
  for (const auto& p : places_) {
    if (!p.has_value()) return false;
  }
  return true;
}

int Schedule::max_cycle() const {
  int max = -1;
  for (const auto& p : places_) {
    if (p.has_value()) max = std::max(max, p->cycle);
  }
  return max;
}

int Schedule::stage_count() const {
  const int max = max_cycle();
  return max < 0 ? 0 : max / ii_ + 1;
}

long long Schedule::total_cycles(const Loop& loop, const LatencyModel& lat, long long trip) const {
  check(trip >= 1, "total_cycles: trip must be >= 1");
  check(loop.op_count() == op_count(), "total_cycles: loop/schedule mismatch");
  int span = 0;
  for (int op = 0; op < op_count(); ++op) {
    if (!scheduled(op)) continue;
    span = std::max(span, cycle(op) + lat.of(loop.ops[static_cast<std::size_t>(op)].opcode));
  }
  return (trip - 1) * static_cast<long long>(ii_) + span;
}

std::vector<std::string> verify_schedule(const Loop& loop, const Ddg& graph,
                                         const MachineConfig& machine, const Schedule& schedule) {
  // One implementation of schedule legality: the independent verifier's
  // pass (src/verify).  The scheduler-side helpers this file used to carry
  // (dependence_violations / resource_violations) duplicated a subset of
  // those rules against the producer's own ReservationTable; they are gone.
  const VerifyReport report = verify_modulo_schedule(loop, graph, machine, schedule);
  std::vector<std::string> violations;
  violations.reserve(report.diagnostics.size());
  for (const VerifyDiagnostic& diagnostic : report.diagnostics) {
    violations.push_back(diagnostic.message);
  }
  return violations;
}

int useful_op_count(const Loop& loop) {
  int count = 0;
  for (const Op& op : loop.ops) {
    if (op.opcode != Opcode::kCopy && op.opcode != Opcode::kMove) ++count;
  }
  return count;
}

double static_ipc(const Loop& loop, const Schedule& schedule) {
  return static_cast<double>(useful_op_count(loop)) / static_cast<double>(schedule.ii());
}

double dynamic_ipc(const Loop& loop, const LatencyModel& lat, const Schedule& schedule,
                   long long trip) {
  const long long total = schedule.total_cycles(loop, lat, trip);
  return static_cast<double>(useful_op_count(loop)) * static_cast<double>(trip) /
         static_cast<double>(total);
}

std::string format_kernel(const Loop& loop, const MachineConfig& machine,
                          const Schedule& schedule) {
  const int ii = schedule.ii();
  std::ostringstream os;
  os << "II=" << ii << " SC=" << schedule.stage_count() << "\n";
  for (int slot = 0; slot < ii; ++slot) {
    os << pad_left(std::to_string(slot), 3) << " |";
    for (int c = 0; c < machine.cluster_count(); ++c) {
      if (c > 0) os << " ||";
      for (int k = 0; k < kNumFuKinds; ++k) {
        const auto kind = static_cast<FuKind>(k);
        for (int fu = 0; fu < machine.fu_count(c, kind); ++fu) {
          // Find an op issued on this FU at this slot.
          std::string cell = ".";
          for (int op = 0; op < loop.op_count(); ++op) {
            if (!schedule.scheduled(op)) continue;
            const Placement& p = schedule.place(op);
            if (p.cluster == c && p.fu == fu &&
                fu_for(loop.ops[static_cast<std::size_t>(op)].opcode) == kind &&
                p.cycle % ii == slot) {
              cell = loop.ops[static_cast<std::size_t>(op)].defines_value()
                         ? loop.ops[static_cast<std::size_t>(op)].name
                         : cat("st#", op);
              cell += cat("(s", p.cycle / ii, ")");
              break;
            }
          }
          os << ' ' << pad_right(cell, 10);
        }
      }
    }
    os << '\n';
  }
  return os.str();
}

void serialize_schedule(BlobWriter& out, const Schedule& schedule) {
  out.put_i32(schedule.ii());
  out.put_i32(schedule.op_count());
  for (int op = 0; op < schedule.op_count(); ++op) {
    const bool placed = schedule.scheduled(op);
    out.put_bool(placed);
    if (!placed) continue;
    const Placement& p = schedule.place(op);
    out.put_i32(p.cycle);
    out.put_i32(p.cluster);
    out.put_i32(p.fu);
  }
}

Schedule deserialize_schedule(BlobReader& in) {
  const std::int32_t ii = in.get_i32();
  const std::int32_t ops = in.get_i32();
  check(ii >= 1, "deserialize_schedule: II < 1");
  check(ops >= 0 && ops <= 1 << 24, "deserialize_schedule: implausible op count");
  Schedule schedule(ops, ii);
  for (int op = 0; op < ops; ++op) {
    if (!in.get_bool()) continue;
    Placement p;
    p.cycle = in.get_i32();
    p.cluster = in.get_i32();
    p.fu = in.get_i32();
    check(p.cycle >= 0 && p.cluster >= 0 && p.fu >= 0,
          "deserialize_schedule: negative placement field");
    schedule.set(op, p);
  }
  return schedule;
}

}  // namespace qvliw
