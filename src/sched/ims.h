// Iterative Modulo Scheduling (Rau, IJPP 1996) with pluggable cluster
// assignment.
//
// The engine is Rau's algorithm: operations are scheduled highest
// height-priority first; each op scans II consecutive cycles from its
// dependence-derived earliest start for a slot with a free FU (and, when
// clustered, a communication-legal cluster); when no slot fits, the op is
// force-placed and conflicting ops are displaced back onto the ready list.
// A budget bounds total placements per II; on exhaustion II is bumped and
// scheduling restarts.  With the default `SingleClusterAssigner` this is
// exactly classic IMS; the partitioner of src/cluster/ supplies a
// topology-aware assigner (Section 4 of the paper).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"
#include "sched/mii.h"
#include "sched/schedule.h"

namespace qvliw {

/// Strategy hook deciding which clusters an op may go to.
///
/// `legal(op, cluster)` must be true iff placing `op` in `cluster` keeps
/// every *currently scheduled* flow neighbour's value path realisable
/// (same cluster or topology-adjacent in the base scheme).  Implementations
/// observe placements through on_place/on_remove.
class ClusterAssigner {
 public:
  virtual ~ClusterAssigner() = default;

  /// Called when an II attempt starts; implementations drop state.
  virtual void reset(int ii) { (void)ii; }

  /// Candidate clusters for `op`, best first.  Must be non-empty.
  virtual void candidates(int op, std::vector<int>& out) = 0;

  /// Communication legality of placing `op` in `cluster` now.
  virtual bool legal(int op, int cluster) = 0;

  /// Scheduled flow neighbours of `op` that become unreachable if `op` is
  /// force-placed in `cluster`; they will be displaced.
  virtual void adjacency_evictions(int op, int cluster, std::vector<int>& out) = 0;

  virtual void on_place(int op, int cluster) { (void)op, (void)cluster; }
  virtual void on_remove(int op) { (void)op; }
};

/// The trivial assigner for single-cluster machines.
class SingleClusterAssigner final : public ClusterAssigner {
 public:
  void candidates(int, std::vector<int>& out) override { out.assign(1, 0); }
  bool legal(int, int) override { return true; }
  void adjacency_evictions(int, int, std::vector<int>&) override {}
};

struct ImsOptions {
  /// Budget = budget_ratio * op_count placements per II attempt (Rau
  /// reports 6 as a robust value).
  int budget_ratio = 6;

  /// Hard cap on the II search.
  int max_ii = 1024;

  /// Maximum IIs tried before giving up.  Raising the II relaxes timing
  /// but never communication structure, so a loop that is unplaceable
  /// under the adjacency constraint would otherwise burn the whole
  /// ladder; 32 attempts is far beyond what any schedulable loop needs.
  int max_ii_attempts = 32;

  /// When > 0, start the search at this II instead of MII (used by the
  /// same-II clustered experiments of Fig. 6).
  int start_ii = 0;

  /// When >= 0, try only IIs up to this value (fail beyond); used to ask
  /// "does it fit at the single-cluster II?".
  int ii_limit = -1;

  /// Precomputed MII bounds for exactly this (loop, graph, machine).
  /// When `known_mii.feasible` is true the scheduler trusts the bounds and
  /// skips compute_mii — the sweep runner's prefix cache supplies them so
  /// points sharing a front end don't recompute RecMII per point.
  MiiInfo known_mii{};
};

struct ImsStats {
  int placements = 0;   // total scheduling acts over all II attempts
  int evictions = 0;    // total displacements
  int ii_attempts = 0;  // number of IIs tried
  int forced = 0;       // forced (Rau) placements, the ones that may displace
  int budget_spent = 0;  // placements consumed by the final II attempt
  /// True when the accepted schedule's II equals MII — provably optimal,
  /// since no schedule of this loop on this machine can beat its MII.
  /// The sweep runner uses this to let higher-budget ladder siblings
  /// install the schedule instead of re-searching.
  bool mii_optimal = false;
};

/// A previously accepted schedule offered as a warm start for a new run
/// over the *same* loop/DDG: the neighbouring point of a budget ladder,
/// the point's own accepted schedule replayed from the persistent
/// artifact store by a later process, or — opt-in — a sibling machine's
/// ladder over the same front end.  The scheduler vets the seed with
/// verify_schedule against the exact (loop, graph, machine) before
/// trusting it; an invalid, stale, or foreign seed is silently ignored,
/// so offering one is always safe regardless of where it came from.
struct WarmStartSeed {
  Schedule schedule;
  int ii = 0;  // the II the seed schedule was accepted at
};

struct ImsResult {
  bool ok = false;
  Schedule schedule;
  int ii = 0;
  MiiInfo mii;
  ImsStats stats;
  std::string failure;
  /// True when the accepted schedule was installed from a WarmStartSeed
  /// instead of being searched for.  Excluded from result-equivalence
  /// comparisons (like stage timings, it records how the schedule was
  /// obtained, not what it is).
  bool warm_started = false;
};

/// Schedules `loop`'s DDG onto `machine`.  The result schedule is fully
/// validated (dependences + resources) before ok=true is returned.
///
/// When `seed` is given (and vets clean for this loop/graph/machine), the
/// II ladder still climbs from MII exactly as a cold run would — a larger
/// placement budget can unlock a *smaller* II than the seed's, and warm
/// starting must never yield a worse II than cold scheduling — but the
/// attempt at the seed's own II is replaced by installing the seed
/// schedule outright.  On ascending-budget ladders the cold attempt at
/// that II is deterministic and completes within the smaller budget that
/// produced the seed, so the installed schedule is bit-identical to what
/// the skipped search would have built; in the common case (seed II ==
/// MII, first attempt succeeds) the whole search collapses into one
/// verification pass.
[[nodiscard]] ImsResult ims_schedule(const Loop& loop, const Ddg& graph,
                                     const MachineConfig& machine, const ImsOptions& options = {},
                                     ClusterAssigner* assigner = nullptr,
                                     const WarmStartSeed* seed = nullptr);

}  // namespace qvliw
