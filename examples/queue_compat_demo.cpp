// Q-compatibility walkthrough (Theorem 1.1 and Figs. 1-2 of the paper).
//
// Shows why a multi-consumer value breaks a queue register file, how the
// copy operation fixes it, and how the compatibility test groups the
// resulting lifetimes into queues.
//
//   ./build/examples/queue_compat_demo
#include <iostream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "qrf/qcompat.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "support/strings.h"
#include "xform/copy_insert.h"

using namespace qvliw;

int main() {
  // Fig. 1's situation: one loaded value consumed by two operations.
  const Loop source = parse_loop(R"(
    loop fig1 {
      trip 64;
      x  = load X[i];
      s  = fadd x, 3;    # first consumer
      p  = fmul x, 5;    # second consumer -> x cannot live in one queue
      store Y[i], s;
      store Z[i], p;
    }
  )");
  std::cout << "A queue delivers a value exactly once, so `x` with two consumers\n"
               "would need two simultaneous queue writes (Fig. 1c).  Copy insertion\n"
               "gives the copy FU's two write ports that job (Fig. 2):\n\n";
  const Loop loop = insert_copies(source).loop;
  std::cout << to_text(loop) << "\n";

  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  if (!sched.ok) {
    std::cerr << "scheduling failed: " << sched.failure << "\n";
    return 1;
  }
  std::cout << "scheduled at II=" << sched.ii << "\n\n";

  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  std::cout << "lifetimes (push -> pop cycles of iteration 0):\n";
  for (std::size_t i = 0; i < allocation.lifetimes.size(); ++i) {
    const Lifetime& lt = allocation.lifetimes[i];
    std::cout << "  lt" << i << ": "
              << pad_right(loop.ops[static_cast<std::size_t>(lt.producer)].name, 6) << " -> "
              << pad_right(loop.ops[static_cast<std::size_t>(lt.consumer)].defines_value()
                               ? loop.ops[static_cast<std::size_t>(lt.consumer)].name
                               : cat("store#", lt.consumer),
                           8)
              << " push " << pad_left(std::to_string(lt.push), 2) << ", pop "
              << pad_left(std::to_string(lt.pop), 2) << "  -> queue "
              << allocation.queue_of[i] << "\n";
  }

  std::cout << "\npairwise Theorem 1.1 verdicts (II=" << sched.ii << "):\n";
  for (std::size_t a = 0; a < allocation.lifetimes.size(); ++a) {
    for (std::size_t b = a + 1; b < allocation.lifetimes.size(); ++b) {
      const Lifetime& la = allocation.lifetimes[a];
      const Lifetime& lb = allocation.lifetimes[b];
      std::cout << "  lt" << a << " vs lt" << b << ": "
                << (q_compatible(la, lb, sched.ii) ? "Q-compatible" : "conflict") << "\n";
    }
  }
  std::cout << "\ntotal queues: " << allocation.total_queues() << ", deepest queue "
            << allocation.max_positions() << " position(s)\n";
  return 0;
}
