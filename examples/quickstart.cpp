// Quickstart: write a loop in the DSL, modulo-schedule it onto a queue-
// register-file VLIW, allocate queues, and verify execution against the
// sequential reference — the whole library in one page.
//
//   ./build/examples/quickstart
#include <iostream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "qrf/queue_alloc.h"
#include "qrf/rf_alloc.h"
#include "sched/ims.h"
#include "sim/vliwsim.h"
#include "xform/copy_insert.h"

using namespace qvliw;

int main() {
  // 1. A loop: y[i] = a*x[i] + y[i], with a running checksum.
  const Loop source = parse_loop(R"(
    loop saxpy_sum {
      invariant a;
      trip 100;
      x   = load X[i];
      y   = load Y[i];
      ax  = fmul x, a;
      s   = fadd ax, y;
      acc = fadd acc@1, s;   # s is used twice: store and checksum
      store Y[i], s;
      store R[i], acc;
    }
  )");
  std::cout << "source loop:\n" << to_text(source) << "\n";

  // 2. Queue register files deliver each value once; give multi-consumer
  //    values a copy tree (Section 2 of the paper).
  const CopyInsertResult copies = insert_copies(source);
  std::cout << "copy insertion added " << copies.copies_added << " copy op(s)\n\n";
  const Loop& loop = copies.loop;

  // 3. Schedule on the paper's 6-FU machine with Rau's IMS.
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  if (!sched.ok) {
    std::cerr << "scheduling failed: " << sched.failure << "\n";
    return 1;
  }
  std::cout << "machine: " << machine.name << "   MII=" << sched.mii.mii
            << " (res " << sched.mii.res_mii << ", rec " << sched.mii.rec_mii
            << ")  achieved II=" << sched.ii << "\n\n";
  std::cout << "kernel (one line per modulo slot; columns are FU instances):\n"
            << format_kernel(loop, machine, sched.schedule) << "\n";

  // 4. Allocate lifetimes to queues with the Q-compatibility test.
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  std::cout << "queues needed: " << allocation.total_queues()
            << " (deepest " << allocation.max_positions() << " positions);"
            << " a conventional RF would need "
            << register_requirement(loop, graph, machine.latency, sched.schedule)
            << " registers\n";

  // 5. Execute on the cycle-accurate simulator and compare against the
  //    sequential interpreter, bit for bit.
  const CheckedSim checked =
      simulate_and_check(loop, graph, machine, sched.schedule, allocation, source.trip_hint);
  if (!checked.ok) {
    std::cerr << "verification failed: " << checked.failure << "\n";
    return 1;
  }
  std::cout << "simulated " << source.trip_hint << " iterations in " << checked.sim.cycles
            << " cycles (dynamic IPC " << checked.sim.dynamic_ipc
            << "); memory matches the reference interpreter\n";
  return 0;
}
