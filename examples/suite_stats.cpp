// Workload suite anatomy.
//
// Prints the composition of the benchmark suite standing in for the
// paper's 1258 Perfect Club loops: body sizes, operation mix, recurrence
// structure, and the resource- vs recurrence-bound split that drives
// Figs. 8/9.  The recurrence bounds come from one SweepRunner pass over a
// bare (no copies, no unrolling) pipeline point; the memory-dependence
// probe inspects the DDG directly.  Useful when re-calibrating the
// generator.
//
//   QVLIW_LOOPS=200 ./build/examples/suite_stats
#include <cstdlib>
#include <iostream>

#include "harness/sweep.h"
#include "ir/ddg.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"
#include "workload/suite.h"

using namespace qvliw;

int main() {
  int loops = 1258;
  if (const char* env = std::getenv("QVLIW_LOOPS")) {
    if (const int n = std::atoi(env); n > 0) loops = n;
  }
  SynthConfig config;
  config.loops = loops;
  const Suite suite = full_suite(config);
  std::cout << "suite: " << suite.loops.size() << " loops (" << suite.kernel_count
            << " kernels + synthetic, seed " << config.seed << ")\n\n";

  // One bare pipeline point: no copies and no unrolling, so the reported
  // RecMII is the source loop's recurrence bound — and the same pass
  // yields the suite's schedulability on the paper's 6-FU machine.
  PipelineOptions bare;
  bare.insert_copies = false;
  const SweepResult sweep =
      SweepRunner().run(suite.loops, MachineConfig::single_cluster_machine(6), {bare});
  const std::vector<LoopResult>& results = sweep.by_point[0];
  int scheduled = 0;
  OnlineStats ii;
  for (const LoopResult& r : results) {
    if (!r.ok) continue;
    ++scheduled;
    ii.add(r.ii);
  }

  OnlineStats size;
  OnlineStats mem_fraction;
  OnlineStats invariants;
  int with_recurrence = 0;
  int memory_recurrence = 0;
  int resource_bound = 0;
  Histogram size_hist(0, 70, 14);
  const LatencyModel lat = LatencyModel::classic();

  for (std::size_t i = 0; i < suite.loops.size(); ++i) {
    const Loop& loop = suite.loops[i];
    size.add(loop.op_count());
    size_hist.add(loop.op_count());
    int mem = 0;
    for (const Op& op : loop.ops) {
      if (is_memory(op.opcode)) ++mem;
    }
    mem_fraction.add(static_cast<double>(mem) / loop.op_count());
    invariants.add(static_cast<double>(loop.invariants.size()));

    if (results[i].rec_mii > 1) ++with_recurrence;
    bool mem_edge = false;
    const Ddg graph = Ddg::build(loop, lat);
    for (const DepEdge& e : graph.edges()) {
      if (e.kind != DepKind::kFlow && e.distance > 0) mem_edge = true;
    }
    if (mem_edge) ++memory_recurrence;
    if (is_resource_constrained(loop)) ++resource_bound;
  }

  const double n = static_cast<double>(suite.loops.size());
  TextTable table({"metric", "value"});
  table.add_row({std::string("mean body size (ops)"), size.mean()});
  table.add_row({std::string("min / max body size"),
                 cat(static_cast<int>(size.min()), " / ", static_cast<int>(size.max()))});
  table.add_row({std::string("mean memory-op fraction"), percent(mem_fraction.mean())});
  table.add_row({std::string("loops with register/memory recurrence"),
                 percent(with_recurrence / n)});
  table.add_row({std::string("loops with loop-carried memory dependence"),
                 percent(memory_recurrence / n)});
  table.add_row({std::string("resource-bound at 18 FUs (Fig. 9 subset)"),
                 percent(resource_bound / n)});
  table.add_row({std::string("mean invariants per loop"), invariants.mean()});
  table.add_row({std::string("schedulable on 6 FUs (bare, no copies)"), percent(scheduled / n)});
  table.add_row({std::string("mean II on 6 FUs (bare)"), ii.mean()});
  table.render(std::cout);

  std::cout << "\nbody-size histogram:\n";
  for (std::size_t b = 0; b < size_hist.bins(); ++b) {
    if (size_hist.bin_count(b) == 0) continue;
    std::cout << pad_left(cat(static_cast<int>(size_hist.bin_lo(b)), "-",
                              static_cast<int>(size_hist.bin_hi(b))),
                          8)
              << " | " << std::string(size_hist.bin_count(b) * 60 / suite.loops.size() + 1, '#')
              << " " << size_hist.bin_count(b) << "\n";
  }
  return 0;
}
