// Code generation: lower a scheduled loop to the machine's VLIW listing.
//
// Prints the full prologue / kernel / epilogue program for a stencil on
// the paper's 6-FU machine, with every value flow resolved to a physical
// queue operand — the artifact a backend for this architecture would emit.
//
//   ./build/examples/codegen_listing
#include <iostream>

#include "ir/printer.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "sim/codegen.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"

using namespace qvliw;

int main() {
  const Loop source = kernel_by_name("stencil3_reuse");
  const Loop loop = insert_copies(source).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);

  const ImsResult sched = ims_schedule(loop, graph, machine);
  if (!sched.ok) {
    std::cerr << "scheduling failed: " << sched.failure << "\n";
    return 1;
  }
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  const VliwProgram program =
      generate_program(loop, graph, machine, sched.schedule, allocation);

  std::cout << "source loop:\n" << to_text(source) << "\n";
  std::cout << "after copy insertion (" << loop.op_count() << " ops), scheduled at II="
            << sched.ii << " with " << allocation.total_queues() << " queues:\n\n";
  std::cout << format_program(program, machine);
  return 0;
}
