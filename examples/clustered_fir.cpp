// Partitioned scheduling on the clustered ring machine (Section 4).
//
// Schedules an 8-tap FIR filter on the paper's 4-cluster machine (12 FUs
// on a bidirectional ring of queues), compares the partitioned II against
// the equivalent single-cluster machine, shows where every operation
// landed, and verifies execution.
//
//   ./build/examples/clustered_fir
#include <iostream>

#include "cluster/partition.h"
#include "ir/printer.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "sim/vliwsim.h"
#include "support/strings.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"

using namespace qvliw;

int main() {
  const Loop source = kernel_by_name("fir8");
  const Loop loop = insert_copies(source).loop;

  const MachineConfig single = MachineConfig::single_cluster_machine(12);
  const MachineConfig ring = MachineConfig::clustered_machine(4);
  const Ddg graph = Ddg::build(loop, ring.latency);

  const ImsResult on_single = ims_schedule(loop, graph, single);
  const ImsResult on_ring = partition_schedule(loop, graph, ring);
  if (!on_single.ok || !on_ring.ok) {
    std::cerr << "scheduling failed: " << on_single.failure << on_ring.failure << "\n";
    return 1;
  }

  std::cout << "fir8 (" << source.op_count() << " source ops, " << loop.op_count()
            << " after copy insertion)\n";
  std::cout << "  single cluster (12 FUs): II=" << on_single.ii << "  SC="
            << on_single.schedule.stage_count() << "\n";
  std::cout << "  4-cluster ring:          II=" << on_ring.ii << "  SC="
            << on_ring.schedule.stage_count() << "\n\n";

  std::cout << "cluster assignment (op -> cluster @ cycle):\n";
  for (int op = 0; op < loop.op_count(); ++op) {
    const Placement& p = on_ring.schedule.place(op);
    std::cout << "  " << pad_right(op_text(loop, loop.ops[static_cast<std::size_t>(op)]), 34)
              << " -> cluster " << p.cluster << " @ cycle " << pad_left(std::to_string(p.cycle), 3)
              << "\n";
  }

  const QueueAllocation allocation = allocate_queues(loop, graph, ring, on_ring.schedule);
  std::cout << "\nqueue domains used:\n";
  for (const AllocatedQueue& queue : allocation.queues) {
    std::cout << "  " << pad_right(domain_name(ring.topology(), queue.domain), 14) << " queue #"
              << queue.index_in_domain << ": " << queue.members.size() << " lifetime(s), "
              << queue.max_occupancy << " position(s)\n";
  }
  std::cout << "max private queues per cluster: " << allocation.max_private_queues()
            << "; max queues per interconnect segment: " << allocation.max_segment_queues()
            << " (the paper's cluster provisions 8 and 8)\n";

  const CheckedSim checked =
      simulate_and_check(loop, graph, ring, on_ring.schedule, allocation, 96);
  std::cout << "\nverification: "
            << (checked.ok ? cat("OK — ", checked.sim.cycles, " cycles, dynamic IPC ",
                                 fixed(checked.sim.dynamic_ipc, 2))
                           : checked.failure)
            << "\n";
  return checked.ok ? 0 : 1;
}
