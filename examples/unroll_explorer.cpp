// Loop unrolling exploration (Section 3).
//
// Sweeps unroll factors for a tiny streaming loop on a 12-FU machine and
// prints the paper's II-speedup metric for each factor, then the factor
// the library's policy picks.  Small bodies cannot saturate a wide VLIW
// at integer II; unrolling buys fractional per-iteration initiation.
//
//   ./build/examples/unroll_explorer
#include <iostream>

#include "ir/printer.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "support/table.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"
#include "xform/unroll.h"

using namespace qvliw;

int main() {
  const Loop source = kernel_by_name("vtriad");  // a[i] = b[i] + q*c[i]
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);

  std::cout << "source loop:\n" << to_text(source) << "\n";
  std::cout << "machine: " << machine.name << "\n\n";

  int base_ii = 0;
  TextTable table({"U", "ops", "MII", "II", "II per source iter", "speedup", "SC", "queues"});
  for (int factor = 1; factor <= 8; ++factor) {
    const Loop unrolled = insert_copies(unroll(source, factor)).loop;
    const Ddg graph = Ddg::build(unrolled, machine.latency);
    const ImsResult sched = ims_schedule(unrolled, graph, machine);
    if (!sched.ok) {
      std::cout << "U=" << factor << ": " << sched.failure << "\n";
      continue;
    }
    if (factor == 1) base_ii = sched.ii;
    const double per_source = static_cast<double>(sched.ii) / factor;
    const QueueAllocation allocation =
        allocate_queues(unrolled, graph, machine, sched.schedule);
    table.add_row({static_cast<std::int64_t>(factor),
                   static_cast<std::int64_t>(unrolled.op_count()),
                   static_cast<std::int64_t>(sched.mii.mii),
                   static_cast<std::int64_t>(sched.ii), per_source,
                   static_cast<double>(base_ii) / per_source,
                   static_cast<std::int64_t>(sched.schedule.stage_count()),
                   static_cast<std::int64_t>(allocation.total_queues())});
  }
  table.render(std::cout);

  const UnrollChoice choice = select_unroll_factor(source, machine);
  std::cout << "\npolicy choice: U=" << choice.factor << " (estimated per-source interval "
            << choice.rate << ")\n";
  return 0;
}
