// Loop unrolling exploration (Section 3).
//
// Sweeps unroll factors for a tiny streaming loop on a 12-FU machine via
// the SweepRunner (one forced-factor point per U, all sharing the
// invariant-stage artifact) and prints the paper's II-speedup metric for
// each factor, then the factor the library's policy picks.  Small bodies
// cannot saturate a wide VLIW at integer II; unrolling buys fractional
// per-iteration initiation.
//
//   ./build/examples/unroll_explorer
#include <iostream>

#include "harness/sweep.h"
#include "ir/printer.h"
#include "support/strings.h"
#include "support/table.h"
#include "workload/kernels.h"
#include "xform/unroll.h"

using namespace qvliw;

int main() {
  const Loop source = kernel_by_name("vtriad");  // a[i] = b[i] + q*c[i]
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  constexpr int kMaxFactor = 8;

  std::cout << "source loop:\n" << to_text(source) << "\n";
  std::cout << "machine: " << machine.name << "\n\n";

  std::vector<SweepPoint> points;
  for (int factor = 1; factor <= kMaxFactor; ++factor) {
    PipelineOptions options;
    options.unroll = true;
    options.forced_unroll = factor;
    points.push_back({cat("U=", factor), machine, options});
  }
  const SweepResult sweep = SweepRunner().run({source}, points);

  int base_ii = 0;
  TextTable table({"U", "ops", "MII", "II", "II per source iter", "speedup", "SC", "queues"});
  for (int factor = 1; factor <= kMaxFactor; ++factor) {
    const LoopResult& r = sweep.by_point[static_cast<std::size_t>(factor - 1)][0];
    if (!r.ok) {
      std::cout << "U=" << factor << ": " << r.failure << "\n";
      continue;
    }
    if (factor == 1) base_ii = r.ii;
    table.add_row({static_cast<std::int64_t>(factor),
                   static_cast<std::int64_t>(r.sched_ops),
                   static_cast<std::int64_t>(r.mii),
                   static_cast<std::int64_t>(r.ii), r.ii_per_source,
                   static_cast<double>(base_ii) / r.ii_per_source,
                   static_cast<std::int64_t>(r.stage_count),
                   static_cast<std::int64_t>(r.total_queues)});
  }
  table.render(std::cout);

  const UnrollChoice choice = select_unroll_factor(source, machine);
  std::cout << "\npolicy choice: U=" << choice.factor << " (estimated per-source interval "
            << choice.rate << ")\n";
  std::cout << "\n[sweep] " << sweep.pipelines << " pipeline runs, cache hit rate "
            << percent(sweep.cache.hit_rate()) << "\n";
  return 0;
}
